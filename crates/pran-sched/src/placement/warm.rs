//! Warm-start incremental placement with hysteresis.
//!
//! Re-solving placement from scratch every epoch costs `O(n log n)` in the
//! total cell count — at metro scale (10,000+ cells) the controller would
//! spend its epoch budget re-sorting cells whose demand barely moved. The
//! [`WarmPlacer`] instead carries *booked* per-cell demand between epochs:
//! each cell is booked at `actual × (1 + band)` when (re)packed, and stays
//! untouched while its actual demand remains inside the hysteresis band
//! `(booked / (1 + band)², booked]`. Only cells that cross the band (grew
//! past their booking, or shrank enough to be worth reclaiming) are marked
//! dirty and re-packed; the per-epoch repack work is therefore proportional
//! to the number of *dirty* cells, not the total cell count, while the
//! booked instance is repaired with the same deterministic
//! [`incremental_repack`] the cold path uses.
//!
//! # Feasibility and the documented gap
//!
//! Booked demand always dominates actual demand (`actual ≤ booked` between
//! repacks, by construction of the band), so any placement that satisfies
//! [`ServerSpec::fits`](super::ServerSpec::fits) for the booked loads also
//! satisfies it for the actual loads — the warm placer never overloads a
//! server on real demand. The price is capacity: bookings inflate demand by
//! up to `(1 + band)`, and incremental repair does not re-optimize clean
//! cells, so the warm placer can use more servers than a cold-start
//! heuristic run on the actual demands. The documented (and
//! property-tested, `tests/tests/proptest_warm_placement.rs`) gap is
//! [`WARM_GAP_FACTOR`]: after every epoch the warm server count stays
//! within `⌈WARM_GAP_FACTOR × cold⌉ + 1` of the cold-start
//! best-fit-decreasing count (and hence of the ILP optimum on small
//! instances, since BFD itself is within `11/9 · OPT + 1`).
//!
//! The gap is *enforced*, not hoped for: incremental repair alone would
//! drift unboundedly under a long demand decline (clean cells are never
//! re-optimized, so the placement stays at its historical spread while a
//! cold solve of today's demands keeps shrinking). Each epoch ends with a
//! consolidation backstop — an `O(n)` demand-sum lower bound on any cold
//! solve pre-filters cheaply, and only when the warm count breaks the
//! documented bound against that floor is a true cold BFD solve computed;
//! if the bound is genuinely broken (and the cold solve places at least
//! as many cells), the placer adopts the cold placement wholesale and
//! re-books at actual demand, restoring the bound by construction.
//! Consolidations are rare (one per sustained decline), so per-epoch work
//! stays proportional to the dirty-cell count plus an `O(n)` scan.

use serde::{Deserialize, Serialize};

use super::heuristics::{place, Heuristic};
use super::migration::{diff, incremental_repack, MigrationPlan};
use super::{Placement, PlacementInstance};

/// Multiplicative server-count gap the warm placer is documented (and
/// property-tested) to stay within, relative to a cold-start
/// best-fit-decreasing solve of the same actual demands:
/// `warm ≤ ⌈WARM_GAP_FACTOR × cold⌉ + 1`.
pub const WARM_GAP_FACTOR: f64 = 2.0;

/// Warm-start placement knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmConfig {
    /// Relative hysteresis band. A cell is re-packed only when its demand
    /// rises above its booking (`actual > booked`) or falls below
    /// `booked / (1 + band)²`; bookings are `actual × (1 + band)`.
    pub band: f64,
}

impl WarmConfig {
    /// Evaluation default: a 10 % hysteresis band, matching the pool's
    /// default demand headroom.
    pub fn default_eval() -> Self {
        WarmConfig { band: 0.10 }
    }

    /// Reject non-finite or negative bands with a typed error.
    pub fn validate(&self) -> Result<(), WarmConfigError> {
        if !self.band.is_finite() || self.band < 0.0 {
            return Err(WarmConfigError::BadBand(self.band));
        }
        Ok(())
    }
}

impl Default for WarmConfig {
    fn default() -> Self {
        Self::default_eval()
    }
}

/// Why a [`WarmConfig`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmConfigError {
    /// The hysteresis band is negative, NaN or infinite.
    BadBand(f64),
}

impl std::fmt::Display for WarmConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmConfigError::BadBand(b) => {
                write!(f, "warm-start hysteresis band {b} must be finite and ≥ 0")
            }
        }
    }
}

impl std::error::Error for WarmConfigError {}

/// Per-epoch warm-placement accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStats {
    /// Cells in the instance this epoch.
    pub cells: usize,
    /// Cells whose demand crossed the hysteresis band (re-booked).
    pub dirty: usize,
    /// Cells that changed servers (or were newly placed).
    pub moves: usize,
}

/// Carries booked demands and the placement across epochs (see the module
/// docs for the feasibility argument).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmPlacer {
    config: WarmConfig,
    /// Booked GOPS per cell; `NAN`-free, 0.0 for never-booked cells.
    booked: Vec<f64>,
    placement: Placement,
}

impl WarmPlacer {
    /// A fresh placer with no history.
    ///
    /// # Panics
    /// Panics when `config` does not [`WarmConfig::validate`].
    pub fn new(config: WarmConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        WarmPlacer {
            config,
            booked: Vec::new(),
            placement: Placement::empty(0),
        }
    }

    /// The configured hysteresis band.
    pub fn config(&self) -> WarmConfig {
        self.config
    }

    /// The current placement (actual-demand feasible, see module docs).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The documented server-count bound relative to a cold-start solve
    /// using `cold` servers: `⌈WARM_GAP_FACTOR × cold⌉ + 1`.
    pub fn gap_bound(cold_servers: usize) -> usize {
        (WARM_GAP_FACTOR * cold_servers as f64).ceil() as usize + 1
    }

    /// Adopt an externally-mutated placement as the warm starting point.
    ///
    /// Control layers above the placer move cells between epochs (app
    /// `Migrate` actions, failover displacement, server drains); without
    /// adopting those moves the next [`WarmPlacer::epoch`] would repack
    /// against stale state. Bookings are kept — a cell the external layer
    /// unplaced simply fails the `placed` test and goes dirty next epoch.
    /// On growth new cells start unbooked; on shrink booking history is
    /// reset (dense cell ids renumber, so old bookings are meaningless).
    pub fn adopt(&mut self, placement: &Placement) {
        let n = placement.assignment.len();
        if self.booked.len() < n {
            self.booked.resize(n, 0.0);
        } else if self.booked.len() > n {
            self.booked = vec![0.0; n];
        }
        self.placement = placement.clone();
    }

    /// Advance one epoch: re-book cells whose actual demand crossed the
    /// hysteresis band, repair the placement against the *booked* instance
    /// (topology changes in `instance.allowed`/`servers` are honoured —
    /// cells on now-forbidden servers are re-placed like any dirty cell),
    /// and return the new placement with churn accounting.
    ///
    /// Cells that fit nowhere remain unplaced, exactly as under
    /// [`incremental_repack`].
    pub fn epoch(&mut self, instance: &PlacementInstance) -> (Placement, MigrationPlan, WarmStats) {
        let n = instance.cells.len();
        // Cell set growth: new cells start unbooked and unplaced. Shrink
        // resets history (ids are dense, so a shrink renumbers cells).
        if self.booked.len() != n {
            if self.booked.len() < n {
                self.booked.resize(n, 0.0);
                self.placement.assignment.resize(n, None);
            } else {
                self.booked = vec![0.0; n];
                self.placement = Placement::empty(n);
            }
        }

        let band = self.config.band;
        let shrink_floor = (1.0 + band) * (1.0 + band);
        let mut dirty = 0usize;
        let mut booked_cells = instance.cells.clone();
        for (cell, demand) in booked_cells.iter_mut().enumerate() {
            let actual = demand.gops;
            let booked = self.booked[cell];
            let placed = self.placement.assignment[cell].is_some();
            let in_band = placed && actual <= booked && actual >= booked / shrink_floor;
            if in_band {
                demand.gops = booked;
            } else {
                dirty += 1;
                let fresh = actual * (1.0 + band);
                self.booked[cell] = fresh;
                demand.gops = fresh;
                // The cell keeps its server: if the fresh booking still
                // fits there, no migration happens; if the server is now
                // overloaded, the repair layer below evicts and re-places
                // deterministically.
            }
        }

        let booked_instance = PlacementInstance {
            cells: booked_cells,
            servers: instance.servers.clone(),
            allowed: instance.allowed.clone(),
        };
        let (mut new_placement, mut plan) = incremental_repack(&booked_instance, &self.placement);

        // Consolidation backstop (see module docs): the cheap floor
        // `⌈Σ actual / max capacity⌉` bounds any cold solve from below,
        // so a warm count inside `gap_bound(floor)` is inside
        // `gap_bound(cold)` too and the epoch stays O(n). Only a floor
        // breach pays for a real cold solve, and only a genuine breach
        // of the documented bound triggers adoption.
        let used = instance.servers_used(&new_placement);
        let max_capacity = instance
            .servers
            .iter()
            .map(|s| s.capacity_gops)
            .fold(0.0f64, f64::max);
        let total_actual: f64 = instance.cells.iter().map(|c| c.gops).sum();
        let cold_floor = if max_capacity > 0.0 {
            (total_actual / max_capacity).ceil() as usize
        } else {
            0
        };
        if used > Self::gap_bound(cold_floor) {
            let cold = place(instance, Heuristic::BestFitDecreasing);
            let cold_used = instance.servers_used(&cold.placement);
            if used > Self::gap_bound(cold_used)
                && cold.placement.placed() >= new_placement.placed()
            {
                // Adopt the cold solve wholesale and re-book at actual
                // demand (zero headroom — it re-accrues as cells next
                // cross the band). The count is now exactly `cold_used`,
                // inside the bound by construction.
                for (cell, demand) in instance.cells.iter().enumerate() {
                    self.booked[cell] = demand.gops;
                }
                dirty = n;
                plan = diff(&self.placement, &cold.placement);
                new_placement = cold.placement;
            }
        }

        self.placement = new_placement.clone();
        let stats = WarmStats {
            cells: n,
            dirty,
            moves: plan.len(),
        };
        (new_placement, plan, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::heuristics::{place, Heuristic};

    fn uniform(demands: &[f64], servers: usize, capacity: f64) -> PlacementInstance {
        PlacementInstance::uniform(demands, servers, capacity)
    }

    #[test]
    fn first_epoch_places_like_cold_start() {
        let inst = uniform(&[50.0, 60.0, 70.0], 4, 200.0);
        let mut warm = WarmPlacer::new(WarmConfig::default_eval());
        let (p, _plan, stats) = warm.epoch(&inst);
        assert_eq!(stats.dirty, 3, "everything is dirty on the first epoch");
        assert_eq!(p.placed(), 3);
        assert!(inst.validate(&p).is_ok());
    }

    #[test]
    fn in_band_wobble_causes_no_churn() {
        let base = [50.0, 60.0, 70.0, 40.0];
        let inst = uniform(&base, 4, 200.0);
        let mut warm = WarmPlacer::new(WarmConfig { band: 0.10 });
        warm.epoch(&inst);
        // ±5 % wobble stays inside the 10 % band.
        let wobbled: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, d)| d * if i % 2 == 0 { 1.04 } else { 0.96 })
            .collect();
        let (_, plan, stats) = warm.epoch(&uniform(&wobbled, 4, 200.0));
        assert_eq!(stats.dirty, 0, "in-band cells must stay booked");
        assert!(plan.is_empty(), "no churn: {plan:?}");
    }

    #[test]
    fn out_of_band_growth_repacks_only_the_grown_cell() {
        let base = [50.0, 60.0, 70.0, 40.0];
        let inst = uniform(&base, 4, 200.0);
        let mut warm = WarmPlacer::new(WarmConfig { band: 0.10 });
        warm.epoch(&inst);
        let mut grown = base.to_vec();
        grown[2] *= 1.5; // well past the band
        let (p, _, stats) = warm.epoch(&uniform(&grown, 4, 200.0));
        assert_eq!(stats.dirty, 1);
        assert!(uniform(&grown, 4, 200.0).validate(&p).is_ok());
    }

    #[test]
    fn booked_loads_dominate_actual_loads() {
        // Feasibility transfer: after any epoch, actual server loads fit.
        let mut warm = WarmPlacer::new(WarmConfig { band: 0.2 });
        let mut demands = vec![30.0, 45.0, 60.0, 25.0, 80.0];
        for step in 0..10 {
            let factor = 1.0 + 0.07 * ((step % 3) as f64 - 1.0);
            for d in demands.iter_mut() {
                *d *= factor;
            }
            let inst = uniform(&demands, 6, 150.0);
            let (p, _, _) = warm.epoch(&inst);
            for (s, load) in inst.server_loads(&p).iter().enumerate() {
                assert!(
                    inst.servers[s].fits(*load),
                    "epoch {step}: server {s} at {load} GOPS overloaded on actual demand"
                );
            }
        }
    }

    #[test]
    fn stays_within_documented_gap_of_cold_start() {
        let mut warm = WarmPlacer::new(WarmConfig::default_eval());
        let mut demands: Vec<f64> = (0..24).map(|i| 20.0 + (i as f64 * 13.0) % 70.0).collect();
        for step in 0..8 {
            for (i, d) in demands.iter_mut().enumerate() {
                *d *= 1.0 + 0.05 * (((step + i) % 5) as f64 - 2.0) / 2.0;
            }
            let inst = uniform(&demands, 24, 200.0);
            let (p, _, _) = warm.epoch(&inst);
            let cold = place(&inst, Heuristic::BestFitDecreasing);
            let warm_used = inst.servers_used(&p);
            let cold_used = inst.servers_used(&cold.placement);
            assert!(
                warm_used <= WarmPlacer::gap_bound(cold_used),
                "epoch {step}: warm {warm_used} vs cold {cold_used}"
            );
        }
    }

    #[test]
    fn dead_server_forces_replacement() {
        let base = [50.0, 60.0];
        let inst = uniform(&base, 2, 200.0);
        let mut warm = WarmPlacer::new(WarmConfig::default_eval());
        let (p, _, _) = warm.epoch(&inst);
        let victim = p.assignment[0].unwrap();
        let mut shrunk = uniform(&base, 2, 200.0);
        shrunk.allowed = crate::placement::Allowed::Uniform((0..2).map(|s| s != victim).collect());
        let (p2, _, _) = warm.epoch(&shrunk);
        assert_ne!(p2.assignment[0], Some(victim));
        assert!(shrunk.validate(&p2).is_ok());
    }

    #[test]
    fn cell_set_growth_books_new_cells() {
        let mut warm = WarmPlacer::new(WarmConfig::default_eval());
        warm.epoch(&uniform(&[40.0, 40.0], 4, 200.0));
        let (p, _, stats) = warm.epoch(&uniform(&[40.0, 40.0, 40.0, 40.0], 4, 200.0));
        assert_eq!(stats.dirty, 2, "only the new cells are dirty");
        assert_eq!(p.placed(), 4);
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn bad_band_rejected() {
        WarmPlacer::new(WarmConfig { band: -0.5 });
    }

    #[test]
    fn demand_collapse_triggers_consolidation() {
        // 24 busy cells spread over 24 servers, then demand collapses to
        // a trickle that fits one server. Incremental repair alone would
        // stay at the historical spread; the backstop must pull the
        // count back inside the documented gap of a cold solve.
        let mut warm = WarmPlacer::new(WarmConfig::default_eval());
        let busy = vec![100.0; 24];
        warm.epoch(&uniform(&busy, 24, 200.0));

        let idle = vec![5.0; 24];
        let inst = uniform(&idle, 24, 200.0);
        let (p, plan, stats) = warm.epoch(&inst);
        let cold = place(&inst, Heuristic::BestFitDecreasing);
        let warm_used = inst.servers_used(&p);
        let cold_used = inst.servers_used(&cold.placement);
        assert!(
            warm_used <= WarmPlacer::gap_bound(cold_used),
            "consolidation must restore the gap: warm {warm_used} vs cold {cold_used}"
        );
        assert_eq!(stats.dirty, 24, "consolidation re-books every cell");
        assert!(!plan.is_empty(), "consolidation moves cells");
        assert!(inst.validate(&p).is_ok());
    }
}
