//! Load prediction for the coarse placement timescale.
//!
//! Placement decisions hold for an epoch, so they must be sized for the
//! load the epoch *will* bring, not the load just seen. Three predictors
//! cover the design space the controller exposes: EWMA (smooth, lags
//! trends), Holt's linear method (tracks trends), and sliding-window max
//! (conservative envelope — what you provision when misses are expensive).

/// A one-step-ahead load predictor over a scalar series.
pub trait Predictor {
    /// Feed the latest observation.
    fn observe(&mut self, value: f64);
    /// Predict the next value. Implementations return 0 before any
    /// observation.
    fn predict(&self) -> f64;
    /// Human-readable name for tables.
    fn name(&self) -> &'static str;
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// `alpha ∈ (0, 1]`: weight of the newest sample.
    pub fn new(alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha > 0.0,
            "alpha must be in (0,1]"
        );
        Ewma { alpha, state: None }
    }
}

impl Predictor for Ewma {
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }

    fn predict(&self) -> f64 {
        self.state.unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Holt's linear (double-exponential) smoothing: level + trend.
#[derive(Debug, Clone)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
}

impl HoltLinear {
    /// `alpha`, `beta` ∈ (0, 1].
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        assert!(beta > 0.0 && beta <= 1.0);
        HoltLinear {
            alpha,
            beta,
            level: None,
            trend: 0.0,
        }
    }
}

impl Predictor for HoltLinear {
    fn observe(&mut self, value: f64) {
        match self.level {
            None => {
                self.level = Some(value);
                self.trend = 0.0;
            }
            Some(level) => {
                let new_level = self.alpha * value + (1.0 - self.alpha) * (level + self.trend);
                self.trend = self.beta * (new_level - level) + (1.0 - self.beta) * self.trend;
                self.level = Some(new_level);
            }
        }
    }

    fn predict(&self) -> f64 {
        self.level.map(|l| l + self.trend).unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "holt"
    }
}

/// Sliding-window maximum: predicts the largest of the last `window`
/// observations (a conservative envelope).
#[derive(Debug, Clone)]
pub struct SlidingMax {
    window: usize,
    buf: Vec<f64>,
    next: usize,
    filled: usize,
}

impl SlidingMax {
    /// `window ≥ 1`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        SlidingMax {
            window,
            buf: vec![0.0; window],
            next: 0,
            filled: 0,
        }
    }
}

impl Predictor for SlidingMax {
    fn observe(&mut self, value: f64) {
        self.buf[self.next] = value;
        self.next = (self.next + 1) % self.window;
        self.filled = (self.filled + 1).min(self.window);
    }

    fn predict(&self) -> f64 {
        self.buf[..self.filled].iter().copied().fold(0.0, f64::max)
    }

    fn name(&self) -> &'static str {
        "sliding-max"
    }
}

/// Evaluation of a predictor over a series: feed each value, predicting
/// one step ahead, and score errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionScore {
    /// Mean absolute error of the one-step-ahead predictions.
    pub mae: f64,
    /// Fraction of steps where the prediction fell short of the actual
    /// value (under-provisioning events).
    pub under_rate: f64,
    /// Mean relative over-provisioning on steps where prediction ≥ actual.
    pub over_margin: f64,
}

/// Run a predictor over a series and score it.
pub fn evaluate<P: Predictor + ?Sized>(predictor: &mut P, series: &[f64]) -> PredictionScore {
    let mut abs_err = 0.0;
    let mut unders = 0usize;
    let mut over_sum = 0.0;
    let mut overs = 0usize;
    let mut counted = 0usize;
    for (i, &actual) in series.iter().enumerate() {
        if i > 0 {
            let pred = predictor.predict();
            abs_err += (pred - actual).abs();
            counted += 1;
            if pred < actual {
                unders += 1;
            } else {
                overs += 1;
                if actual > 0.0 {
                    over_sum += (pred - actual) / actual;
                }
            }
        }
        predictor.observe(actual);
    }
    PredictionScore {
        mae: if counted > 0 {
            abs_err / counted as f64
        } else {
            0.0
        },
        under_rate: if counted > 0 {
            unders as f64 / counted as f64
        } else {
            0.0
        },
        over_margin: if overs > 0 {
            over_sum / overs as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant() {
        let mut p = Ewma::new(0.3);
        for _ in 0..100 {
            p.observe(5.0);
        }
        assert!((p.predict() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_empty_predicts_zero() {
        assert_eq!(Ewma::new(0.5).predict(), 0.0);
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let mut p = HoltLinear::new(0.5, 0.3);
        for i in 0..100 {
            p.observe(i as f64);
        }
        // Next value should be ≈ 100.
        assert!(
            (p.predict() - 100.0).abs() < 2.0,
            "holt predicts {}",
            p.predict()
        );
        // EWMA lags badly on the same series.
        let mut e = Ewma::new(0.3);
        for i in 0..100 {
            e.observe(i as f64);
        }
        assert!(e.predict() < 98.0, "ewma should lag a ramp");
    }

    #[test]
    fn sliding_max_is_envelope() {
        let mut p = SlidingMax::new(3);
        for &v in &[1.0, 5.0, 2.0] {
            p.observe(v);
        }
        assert_eq!(p.predict(), 5.0);
        // The 5 ages out after 3 more samples.
        for &v in &[1.0, 1.0, 1.0] {
            p.observe(v);
        }
        assert_eq!(p.predict(), 1.0);
    }

    #[test]
    fn evaluate_scores_perfect_predictor_zero_mae() {
        // A constant series is perfectly predicted by EWMA after warmup.
        let series = vec![3.0; 50];
        let score = evaluate(&mut Ewma::new(0.5), &series);
        assert!(score.mae < 1e-9);
        assert_eq!(score.under_rate, 0.0);
    }

    #[test]
    fn sliding_max_underprovisions_rarely_on_noisy_series() {
        // Noisy-but-bounded series: envelope prediction should rarely fall
        // short compared to EWMA.
        let series: Vec<f64> = (0..500)
            .map(|i| 1.0 + 0.5 * ((i as f64) * 0.7).sin() + 0.2 * ((i as f64) * 2.3).cos())
            .collect();
        let env = evaluate(&mut SlidingMax::new(20), &series);
        let smooth = evaluate(&mut Ewma::new(0.3), &series);
        assert!(
            env.under_rate < smooth.under_rate,
            "envelope {} vs ewma {}",
            env.under_rate,
            smooth.under_rate
        );
        // ...at the price of larger over-provisioning margin.
        assert!(env.over_margin > smooth.over_margin);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }
}
