//! Struct-of-arrays batched variant of the analytic scheduler.
//!
//! [`simulate`](super::simulate) allocates six vectors and heaps per call
//! and carries tasks as an array-of-structs of `Duration`s. That is fine
//! for scoring one policy on one task set; it is the dominant cost when a
//! metro run calls it once per server per trace step (millions of calls
//! of ~10 tasks each). This module is the zero-allocation twin:
//!
//! * [`TaskBatch`] keeps release/deadline/service as flat `u64`
//!   nanosecond columns (task id = row index), so batched cost
//!   evaluation walks each column cache-linearly;
//! * [`SimScratch`] owns the sort order and the ready/core heaps, reused
//!   across calls;
//! * [`simulate_into`] writes finish/missed columns into a caller-owned
//!   [`BatchOutcome`].
//!
//! The algorithm is the *same* greedy non-preemptive dispatch as
//! [`simulate`](super::simulate), bit-for-bit: all simulator-generated
//! times are exact nanosecond quantities, `u64` nanosecond arithmetic is
//! isomorphic to `Duration` arithmetic at this range (hours ≪ 2⁶⁴ ns),
//! and ordering keys compare identically. `tests` below pin the
//! equivalence against the reference on randomized task sets for every
//! policy.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{Policy, RtTask};

/// Flat struct-of-arrays task set: row `i` is task `i`.
#[derive(Debug, Clone, Default)]
pub struct TaskBatch {
    /// Cell of each task (partitioned policies key on this).
    pub cell: Vec<u32>,
    /// Absolute release time in nanoseconds.
    pub release_ns: Vec<u64>,
    /// Absolute deadline in nanoseconds.
    pub deadline_ns: Vec<u64>,
    /// Service time on one core in nanoseconds.
    pub service_ns: Vec<u64>,
}

impl TaskBatch {
    /// Empty batch.
    pub fn new() -> Self {
        TaskBatch::default()
    }

    /// Append one task row.
    #[inline]
    pub fn push(&mut self, cell: u32, release_ns: u64, deadline_ns: u64, service_ns: u64) {
        self.cell.push(cell);
        self.release_ns.push(release_ns);
        self.deadline_ns.push(deadline_ns);
        self.service_ns.push(service_ns);
    }

    /// Append one task per `(releases[i], deadlines[i])` pair, all for the
    /// same cell with the same service time — the per-cell subframe-grid
    /// shape, appended column-wise instead of `releases.len()` pushes.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    #[inline]
    pub fn push_run(&mut self, cell: u32, releases: &[u64], deadlines: &[u64], service_ns: u64) {
        assert_eq!(releases.len(), deadlines.len(), "grid slices must match");
        let n = releases.len();
        self.cell.resize(self.cell.len() + n, cell);
        self.release_ns.extend_from_slice(releases);
        self.deadline_ns.extend_from_slice(deadlines);
        self.service_ns
            .resize(self.service_ns.len() + n, service_ns);
    }

    /// Drop all rows, keeping the columns' capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.cell.clear();
        self.release_ns.clear();
        self.deadline_ns.clear();
        self.service_ns.clear();
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.cell.len()
    }

    /// Whether the batch holds no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cell.is_empty()
    }

    /// Build a batch from reference tasks. Requires dense ids
    /// (`tasks[i].id == i`), the layout the pool generates.
    ///
    /// # Panics
    /// Panics when ids are not dense or a time does not fit `u64` ns.
    pub fn from_tasks(tasks: &[RtTask]) -> Self {
        let mut batch = TaskBatch::new();
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id, i, "task ids must be dense row indices");
            batch.push(
                t.cell as u32,
                u64::try_from(t.release.as_nanos()).expect("release fits u64 ns"),
                u64::try_from(t.deadline.as_nanos()).expect("deadline fits u64 ns"),
                u64::try_from(t.service.as_nanos()).expect("service fits u64 ns"),
            );
        }
        batch
    }
}

/// Reusable scheduler scratch: sort order and dispatch heaps.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Task indices in dispatch-admission order.
    order: Vec<u32>,
    /// Min-heap of `(free_at_ns, core)`.
    core_free: BinaryHeap<Reverse<(u64, u32)>>,
    /// Min-heap of `(policy key ns, task index)`.
    ready: BinaryHeap<Reverse<(u64, u32)>>,
    /// Flat per-core free times for the heap-free FIFO dispatch path.
    core_free_flat: Vec<u64>,
}

impl SimScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        SimScratch::default()
    }
}

/// Caller-owned output columns of [`simulate_into`].
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Finish time per task in nanoseconds.
    pub finish_ns: Vec<u64>,
    /// Deadline-miss flag per task.
    pub missed: Vec<bool>,
    /// Busy time accumulated per core, nanoseconds.
    pub core_busy_ns: Vec<u64>,
    /// Time the last task finished, nanoseconds.
    pub makespan_ns: u64,
}

impl BatchOutcome {
    /// Empty outcome.
    pub fn new() -> Self {
        BatchOutcome::default()
    }

    /// Number of missed deadlines.
    pub fn misses(&self) -> usize {
        self.missed.iter().filter(|&&m| m).count()
    }
}

/// Ready-queue ordering key (mirrors the reference scheduler's).
#[derive(Clone, Copy)]
enum SelectBy {
    Deadline,
    Release,
    Slack,
}

/// Simulate a batch on `cores` identical cores under `policy`, writing
/// results into `out` — the zero-allocation twin of
/// [`simulate`](super::simulate). Emits the same per-task `subframe`
/// trace events when telemetry is on.
///
/// # Panics
/// Panics if `cores == 0`.
pub fn simulate_into(
    batch: &TaskBatch,
    cores: usize,
    policy: Policy,
    scratch: &mut SimScratch,
    out: &mut BatchOutcome,
) {
    assert!(cores >= 1, "need at least one core");
    let n = batch.len();
    out.finish_ns.clear();
    out.finish_ns.resize(n, 0);
    out.missed.clear();
    out.missed.resize(n, false);
    out.core_busy_ns.clear();
    out.core_busy_ns.resize(cores, 0);
    out.makespan_ns = 0;

    match policy {
        Policy::Partitioned => {
            // Split by cell % cores; each partition runs FIFO on one core
            // — single-core FIFO is always dispatch-order scheduling, so
            // the heap-free path applies unconditionally.
            for core in 0..cores {
                scratch.order.clear();
                scratch.order.extend(
                    (0..n as u32).filter(|&i| batch.cell[i as usize] as usize % cores == core),
                );
                sort_order(batch, &mut scratch.order);
                let makespan = run_queue_fifo(
                    batch,
                    &scratch.order,
                    1,
                    &mut scratch.core_free_flat,
                    &mut out.finish_ns,
                    &mut out.missed,
                    &mut out.core_busy_ns[core..core + 1],
                );
                out.makespan_ns = out.makespan_ns.max(makespan);
            }
        }
        Policy::GlobalEdf | Policy::GlobalLlf | Policy::GlobalFifo => {
            scratch.order.clear();
            scratch.order.extend(0..n as u32);
            sort_order(batch, &mut scratch.order);
            // FIFO pops the ready heap in exactly admission order, and so
            // does EDF whenever `deadline − release` is one constant (the
            // subframe case: every task gets the same compute budget) —
            // then `(deadline, id)` and `(release, id)` order identically,
            // so greedy dispatch never needs the heaps at all.
            let fifo_equivalent = match policy {
                Policy::GlobalFifo => true,
                Policy::GlobalEdf => uniform_deadline_offset(batch),
                _ => false,
            };
            out.makespan_ns = if fifo_equivalent {
                run_queue_fifo(
                    batch,
                    &scratch.order,
                    cores,
                    &mut scratch.core_free_flat,
                    &mut out.finish_ns,
                    &mut out.missed,
                    &mut out.core_busy_ns,
                )
            } else {
                let select = match policy {
                    Policy::GlobalEdf => SelectBy::Deadline,
                    Policy::GlobalLlf => SelectBy::Slack,
                    _ => SelectBy::Release,
                };
                run_queue(
                    batch,
                    &scratch.order,
                    cores,
                    select,
                    &mut scratch.core_free,
                    &mut scratch.ready,
                    &mut out.finish_ns,
                    &mut out.missed,
                    &mut out.core_busy_ns,
                )
            };
        }
    }

    if pran_telemetry::enabled() {
        // Same events the reference scheduler emits (µs-truncated, start
        // reconstructed as finish − service on the µs grid).
        for i in 0..n {
            let finish = out.finish_ns[i] / 1_000;
            let service = batch.service_ns[i] / 1_000;
            pran_telemetry::trace::sim_event(
                "subframe",
                finish,
                &[
                    ("cell", (batch.cell[i] as usize).into()),
                    ("release_us", (batch.release_ns[i] / 1_000).into()),
                    ("start_us", finish.saturating_sub(service).into()),
                    ("finish_us", finish.into()),
                    ("deadline_us", (batch.deadline_ns[i] / 1_000).into()),
                    ("policy", policy.label().into()),
                ],
            );
        }
    }
}

/// Sort task indices by (release, index) — the reference admission order
/// (ids there are dense, so index order is id order).
fn sort_order(batch: &TaskBatch, order: &mut [u32]) {
    order.sort_unstable_by_key(|&i| (batch.release_ns[i as usize], i));
}

/// Whether every task has the same `deadline − release` budget — the
/// condition under which EDF's ready ordering coincides with admission
/// order (see the fast-path comment in [`simulate_into`]).
fn uniform_deadline_offset(batch: &TaskBatch) -> bool {
    let n = batch.len();
    if n == 0 {
        return true;
    }
    let off = batch.deadline_ns[0].wrapping_sub(batch.release_ns[0]);
    (1..n).all(|i| batch.deadline_ns[i].wrapping_sub(batch.release_ns[i]) == off)
}

/// Heap-free twin of [`run_queue`] for policies whose ready queue pops in
/// admission order: tasks dispatch strictly in `order`, each to the core
/// with the least `(free_at, core)` — the exact task→core→begin mapping
/// the heap version produces, without its per-task heap traffic.
fn run_queue_fifo(
    batch: &TaskBatch,
    order: &[u32],
    cores: usize,
    core_free: &mut Vec<u64>,
    finish_ns: &mut [u64],
    missed: &mut [bool],
    core_busy_ns: &mut [u64],
) -> u64 {
    core_free.clear();
    core_free.resize(cores, 0);
    let mut makespan = 0u64;
    for &i in order {
        let i = i as usize;
        // First minimum wins: ties pick the lowest core id, matching the
        // heap's `(free_at, core)` ordering.
        let mut c = 0usize;
        for k in 1..cores {
            if core_free[k] < core_free[c] {
                c = k;
            }
        }
        let begin = core_free[c].max(batch.release_ns[i]);
        let end = begin + batch.service_ns[i];
        finish_ns[i] = end;
        missed[i] = end > batch.deadline_ns[i];
        core_busy_ns[c] += batch.service_ns[i];
        makespan = makespan.max(end);
        core_free[c] = end;
    }
    makespan
}

/// Greedy non-preemptive dispatch of `order`'s tasks over `cores` cores,
/// writing finish/missed at the tasks' global indices. `core_busy_ns`
/// has one slot per core in this run. Returns the makespan.
#[allow(clippy::too_many_arguments)] // split borrows of scratch and outcome
fn run_queue(
    batch: &TaskBatch,
    order: &[u32],
    cores: usize,
    select: SelectBy,
    core_free: &mut BinaryHeap<Reverse<(u64, u32)>>,
    ready: &mut BinaryHeap<Reverse<(u64, u32)>>,
    finish_ns: &mut [u64],
    missed: &mut [bool],
    core_busy_ns: &mut [u64],
) -> u64 {
    let n = order.len();
    core_free.clear();
    for c in 0..cores {
        core_free.push(Reverse((0, c as u32)));
    }
    ready.clear();

    let key = |i: usize| match select {
        SelectBy::Deadline => batch.deadline_ns[i],
        SelectBy::Release => batch.release_ns[i],
        SelectBy::Slack => batch.deadline_ns[i].saturating_sub(batch.service_ns[i]),
    };

    let mut makespan = 0u64;
    let mut next = 0usize;
    while next < n || !ready.is_empty() {
        let Reverse((free_at, core)) = *core_free.peek().expect("cores exist");
        if ready.is_empty() {
            // Jump to the next release.
            let t = batch.release_ns[order[next] as usize].max(free_at);
            while next < n && batch.release_ns[order[next] as usize] <= t {
                let i = order[next];
                ready.push(Reverse((key(i as usize), i)));
                next += 1;
            }
            continue;
        }
        // Start time is when the earliest core frees up; admit everything
        // released by then so the policy chooses among all ready tasks.
        let start = free_at;
        while next < n && batch.release_ns[order[next] as usize] <= start {
            let i = order[next];
            ready.push(Reverse((key(i as usize), i)));
            next += 1;
        }
        let Reverse((_, i)) = ready.pop().expect("ready non-empty");
        let i = i as usize;
        let begin = start.max(batch.release_ns[i]);
        let end = begin + batch.service_ns[i];
        finish_ns[i] = end;
        missed[i] = end > batch.deadline_ns[i];
        core_busy_ns[core as usize] += batch.service_ns[i];
        makespan = makespan.max(end);
        core_free.pop();
        core_free.push(Reverse((end, core)));
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::super::simulate;
    use super::*;
    use std::time::Duration;

    /// Deterministic xorshift so the differential sweep needs no RNG dep.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn random_tasks(rng: &mut Rng, n: usize, cells: usize) -> Vec<RtTask> {
        (0..n)
            .map(|id| {
                let release = Duration::from_nanos(rng.next() % 4_000_000);
                // Mix exact-µs and odd-ns values so truncation paths and
                // tie-breaking both get exercised.
                let service = Duration::from_nanos(100_000 + rng.next() % 2_000_003);
                let deadline = release + Duration::from_nanos(rng.next() % 3_000_001);
                RtTask {
                    id,
                    cell: (rng.next() % cells as u64) as usize,
                    release,
                    deadline,
                    service,
                }
            })
            .collect()
    }

    /// The EDF fast path (constant `deadline − release`, heap-free
    /// dispatch) must match the reference scheduler exactly — this is the
    /// shape every subframe batch has, so it is the path e15 lives on.
    #[test]
    fn edf_fast_path_matches_reference_on_uniform_offset() {
        let mut rng = Rng(0xDEADBEEFCAFEF00D);
        let mut scratch = SimScratch::new();
        let mut out = BatchOutcome::new();
        for round in 0..40 {
            let n = 1 + (round % 23);
            let offset = Duration::from_nanos(1_500_000 + rng.next() % 1_000_000);
            let tasks: Vec<RtTask> = (0..n)
                .map(|id| {
                    let release = Duration::from_nanos((rng.next() % 4) * 1_000_000);
                    RtTask {
                        id,
                        cell: (rng.next() % 7) as usize,
                        release,
                        deadline: release + offset,
                        service: Duration::from_nanos(100_000 + rng.next() % 2_000_003),
                    }
                })
                .collect();
            let batch = TaskBatch::from_tasks(&tasks);
            assert!(uniform_deadline_offset(&batch), "test shape broken");
            for cores in [1, 2, 4] {
                let reference = simulate(&tasks, cores, Policy::GlobalEdf);
                simulate_into(&batch, cores, Policy::GlobalEdf, &mut scratch, &mut out);
                for i in 0..n {
                    assert_eq!(
                        out.finish_ns[i],
                        reference.finish[i].as_nanos() as u64,
                        "finish mismatch task {i} cores {cores}"
                    );
                    assert_eq!(out.missed[i], reference.missed[i]);
                }
                assert_eq!(out.makespan_ns, reference.makespan.as_nanos() as u64);
                let busy: Vec<u64> = reference
                    .core_busy
                    .iter()
                    .map(|d| d.as_nanos() as u64)
                    .collect();
                assert_eq!(out.core_busy_ns, busy, "cores {cores}");
            }
        }
    }

    #[test]
    fn matches_reference_on_random_sets() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        let mut scratch = SimScratch::new();
        let mut out = BatchOutcome::new();
        for round in 0..40 {
            let n = 1 + (round % 17);
            let tasks = random_tasks(&mut rng, n, 5);
            let batch = TaskBatch::from_tasks(&tasks);
            for cores in [1, 2, 4] {
                for policy in Policy::all() {
                    let reference = simulate(&tasks, cores, policy);
                    simulate_into(&batch, cores, policy, &mut scratch, &mut out);
                    for i in 0..n {
                        assert_eq!(
                            out.finish_ns[i],
                            reference.finish[i].as_nanos() as u64,
                            "finish mismatch task {i} {policy:?} cores {cores}"
                        );
                        assert_eq!(out.missed[i], reference.missed[i]);
                    }
                    assert_eq!(out.misses(), reference.misses());
                    assert_eq!(out.makespan_ns, reference.makespan.as_nanos() as u64);
                    let busy: Vec<u64> = reference
                        .core_busy
                        .iter()
                        .map(|d| d.as_nanos() as u64)
                        .collect();
                    assert_eq!(out.core_busy_ns, busy, "{policy:?} cores {cores}");
                }
            }
        }
    }

    #[test]
    fn reuse_across_differently_sized_batches() {
        let mut rng = Rng(42);
        let mut scratch = SimScratch::new();
        let mut out = BatchOutcome::new();
        // Shrinking sizes must not leave stale rows behind.
        for n in [13usize, 4, 9, 1] {
            let tasks = random_tasks(&mut rng, n, 3);
            let batch = TaskBatch::from_tasks(&tasks);
            simulate_into(&batch, 2, Policy::GlobalEdf, &mut scratch, &mut out);
            assert_eq!(out.finish_ns.len(), n);
            assert_eq!(out.missed.len(), n);
            let reference = simulate(&tasks, 2, Policy::GlobalEdf);
            assert_eq!(out.misses(), reference.misses());
        }
    }

    #[test]
    fn empty_batch() {
        let mut scratch = SimScratch::new();
        let mut out = BatchOutcome::new();
        simulate_into(
            &TaskBatch::new(),
            4,
            Policy::GlobalEdf,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.misses(), 0);
        assert_eq!(out.makespan_ns, 0);
        assert_eq!(out.core_busy_ns, vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        simulate_into(
            &TaskBatch::new(),
            0,
            Policy::GlobalEdf,
            &mut SimScratch::new(),
            &mut BatchOutcome::new(),
        );
    }
}
