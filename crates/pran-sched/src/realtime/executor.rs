//! A real threaded executor with deadline accounting.
//!
//! The simulator in the parent module answers "what if" questions at scale;
//! this executor answers "does it actually hold on this machine": worker
//! threads pull closures (e.g. real turbo decodes) from a deadline-ordered
//! queue and the harness records wall-clock completion against each job's
//! deadline. Used by the failover example and the E6 validation path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

/// A unit of work with a deadline relative to pool start.
pub struct Job {
    /// Caller-assigned id.
    pub id: usize,
    /// Deadline relative to [`DeadlineExecutor::run`]'s start instant.
    pub deadline: Duration,
    /// The work itself.
    pub work: Box<dyn FnOnce() + Send>,
}

/// Completion record for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The job's id.
    pub id: usize,
    /// Wall-clock finish relative to pool start.
    pub finished_at: Duration,
    /// Whether it finished past its deadline.
    pub missed_deadline: bool,
}

/// Outcome of one executor run.
#[derive(Debug, Clone)]
pub struct ExecutorOutcome {
    /// One record per job, sorted by id.
    pub completions: Vec<Completion>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
}

impl ExecutorOutcome {
    /// Number of jobs that finished after their deadline.
    pub fn misses(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| c.missed_deadline)
            .count()
    }

    /// Fraction of jobs that missed.
    pub fn miss_ratio(&self) -> f64 {
        if self.completions.is_empty() {
            0.0
        } else {
            self.misses() as f64 / self.completions.len() as f64
        }
    }
}

/// A fixed-size worker pool executing jobs in deadline (EDF) order.
pub struct DeadlineExecutor {
    workers: usize,
}

impl DeadlineExecutor {
    /// Create an executor with `workers` threads (≥ 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        DeadlineExecutor { workers }
    }

    /// Run all jobs to completion and report per-job deadline outcomes.
    ///
    /// Jobs are dispatched in deadline order (non-preemptive EDF): the
    /// queue is sorted up front and workers pull from the front.
    pub fn run(&self, mut jobs: Vec<Job>) -> ExecutorOutcome {
        jobs.sort_by_key(|j| j.deadline);
        let start = Instant::now();
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel::unbounded();
        for job in jobs {
            tx.send(job).expect("queue open");
        }
        drop(tx);

        let completions = Arc::new(Mutex::new(Vec::new()));
        let in_flight = Arc::new(AtomicUsize::new(0));

        crossbeam::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                let completions = Arc::clone(&completions);
                let in_flight = Arc::clone(&in_flight);
                scope.spawn(move |_| {
                    while let Ok(job) = rx.recv() {
                        in_flight.fetch_add(1, Ordering::Relaxed);
                        (job.work)();
                        let finished_at = start.elapsed();
                        completions.lock().push(Completion {
                            id: job.id,
                            finished_at,
                            missed_deadline: finished_at > job.deadline,
                        });
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("worker panicked");

        let mut completions = Arc::try_unwrap(completions)
            .expect("all workers joined")
            .into_inner();
        completions.sort_by_key(|c| c.id);
        ExecutorOutcome {
            completions,
            elapsed: start.elapsed(),
        }
    }
}

/// A calibrated spin of roughly `duration` of CPU work (for tests and
/// benches that need *real* compute rather than sleeps).
pub fn busy_work(duration: Duration) {
    let start = Instant::now();
    let mut x = 0x9E3779B97F4A7C15u64;
    while start.elapsed() < duration {
        // A few rounds of integer mixing; cheap enough to poll the clock
        // frequently, expensive enough not to melt into a no-op.
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_job(id: usize, work_us: u64, deadline_us: u64) -> Job {
        Job {
            id,
            deadline: Duration::from_micros(deadline_us),
            work: Box::new(move || busy_work(Duration::from_micros(work_us))),
        }
    }

    #[test]
    fn all_jobs_complete() {
        let jobs: Vec<Job> = (0..16).map(|i| spin_job(i, 200, 1_000_000)).collect();
        let out = DeadlineExecutor::new(4).run(jobs);
        assert_eq!(out.completions.len(), 16);
        assert_eq!(out.misses(), 0);
        // Completions come back sorted by id.
        for (i, c) in out.completions.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn impossible_deadline_reported() {
        let jobs = vec![spin_job(0, 5_000, 1)];
        let out = DeadlineExecutor::new(1).run(jobs);
        assert_eq!(out.misses(), 1);
    }

    #[test]
    fn parallelism_speeds_up_wall_clock() {
        // Only meaningful with real hardware parallelism; on a 1-core
        // machine 4 workers time-slice and prove nothing.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 2 {
            return;
        }
        let mk = || {
            (0..8)
                .map(|i| spin_job(i, 4_000, 1_000_000))
                .collect::<Vec<_>>()
        };
        let serial = DeadlineExecutor::new(1).run(mk()).elapsed;
        let parallel = DeadlineExecutor::new(cores.min(4)).run(mk()).elapsed;
        assert!(
            parallel < serial,
            "{} workers ({parallel:?}) should beat 1 ({serial:?})",
            cores.min(4)
        );
    }

    #[test]
    fn busy_work_takes_roughly_requested_time() {
        let start = Instant::now();
        busy_work(Duration::from_millis(5));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(5));
        // Generous overshoot bound: a loaded single-core CI box can
        // preempt the spin for tens of milliseconds.
        assert!(
            elapsed < Duration::from_millis(500),
            "spin overshot: {elapsed:?}"
        );
    }

    #[test]
    fn empty_job_list() {
        let out = DeadlineExecutor::new(2).run(Vec::new());
        assert!(out.completions.is_empty());
        assert_eq!(out.miss_ratio(), 0.0);
    }
}
