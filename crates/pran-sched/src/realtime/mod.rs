//! Fine-timescale real-time scheduling of subframe processing tasks.
//!
//! Every TTI, every active cell emits a processing task with a hard
//! deadline (the HARQ compute budget). The pool must finish them on a
//! shared set of cores. This module simulates non-preemptive,
//! work-conserving multicore scheduling under three policies — global EDF
//! (PRAN's choice), global FIFO, and statically partitioned cores (the
//! distributed-RAN baseline, one cell bound to one core) — and reports
//! deadline misses, the metric experiment E6 sweeps against utilization.

pub mod batch;
pub mod executor;
pub mod parallel;
pub mod workload;

pub use batch::{simulate_into, BatchOutcome, SimScratch, TaskBatch};
pub use parallel::{ParallelConfig, ParallelExecutor, ParallelOutcome};

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// One subframe-processing task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtTask {
    /// Dense task id (index into the outcome's vectors).
    pub id: usize,
    /// Cell the task belongs to (used by partitioned policies).
    pub cell: usize,
    /// Absolute release time (subframe arrival at the pool).
    pub release: Duration,
    /// Absolute deadline.
    pub deadline: Duration,
    /// Required processing time on one core.
    pub service: Duration,
}

/// Scheduling policy of the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Global earliest-deadline-first across all cores.
    GlobalEdf,
    /// Global least-laxity-first: order by `deadline − service` (for
    /// non-preemptive dispatch, laxity ordering is time-invariant, so the
    /// static key is exact). Prioritizes long jobs near their deadline.
    GlobalLlf,
    /// Global FIFO (by release time) across all cores.
    GlobalFifo,
    /// Cells statically bound to cores (`cell % cores`), FIFO per core.
    Partitioned,
}

impl Policy {
    /// All policies.
    pub fn all() -> [Policy; 4] {
        [
            Policy::GlobalEdf,
            Policy::GlobalLlf,
            Policy::GlobalFifo,
            Policy::Partitioned,
        ]
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Policy::GlobalEdf => "global-EDF",
            Policy::GlobalLlf => "global-LLF",
            Policy::GlobalFifo => "global-FIFO",
            Policy::Partitioned => "partitioned",
        }
    }
}

/// Result of simulating a task set under a policy.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Finish time per task id.
    pub finish: Vec<Duration>,
    /// Deadline-miss flag per task id.
    pub missed: Vec<bool>,
    /// Busy time accumulated per core.
    pub core_busy: Vec<Duration>,
    /// Time the last task finished.
    pub makespan: Duration,
}

impl SimOutcome {
    /// Number of missed deadlines.
    pub fn misses(&self) -> usize {
        self.missed.iter().filter(|&&m| m).count()
    }

    /// Fraction of tasks missing their deadline.
    pub fn miss_ratio(&self) -> f64 {
        if self.missed.is_empty() {
            0.0
        } else {
            self.misses() as f64 / self.missed.len() as f64
        }
    }

    /// Worst lateness (finish − deadline) across tasks; zero when all met.
    pub fn max_lateness(&self, tasks: &[RtTask]) -> Duration {
        tasks
            .iter()
            .map(|t| self.finish[t.id].saturating_sub(t.deadline))
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Aggregate core utilization over the makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan.is_zero() || self.core_busy.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.core_busy.iter().map(Duration::as_secs_f64).sum();
        busy / (self.makespan.as_secs_f64() * self.core_busy.len() as f64)
    }
}

/// Simulate a task set on `cores` identical cores under `policy`.
///
/// Non-preemptive and work-conserving: whenever a core is free and tasks
/// are ready, the policy's best ready task starts immediately.
///
/// # Panics
/// Panics if `cores == 0` or any task id is out of range.
pub fn simulate(tasks: &[RtTask], cores: usize, policy: Policy) -> SimOutcome {
    assert!(cores >= 1, "need at least one core");
    let n = tasks.len();
    for t in tasks {
        assert!(t.id < n, "task id {} out of range", t.id);
    }

    let out = match policy {
        Policy::Partitioned => {
            // Split by cell % cores and run each partition on one core.
            let mut finish = vec![Duration::ZERO; n];
            let mut missed = vec![false; n];
            let mut core_busy = vec![Duration::ZERO; cores];
            let mut makespan = Duration::ZERO;
            #[allow(clippy::needless_range_loop)] // `core` indexes core_busy too
            for core in 0..cores {
                let part: Vec<RtTask> = tasks
                    .iter()
                    .copied()
                    .filter(|t| t.cell % cores == core)
                    .collect();
                let out = simulate_global(&part, 1, SelectBy::Release);
                for (local, t) in part.iter().enumerate() {
                    finish[t.id] = out.finish_local[local];
                    missed[t.id] = out.missed_local[local];
                }
                core_busy[core] = out.core_busy[0];
                makespan = makespan.max(out.makespan);
            }
            SimOutcome {
                finish,
                missed,
                core_busy,
                makespan,
            }
        }
        Policy::GlobalEdf => from_global(
            tasks,
            simulate_global(tasks, cores, SelectBy::Deadline),
            cores,
        ),
        Policy::GlobalLlf => {
            from_global(tasks, simulate_global(tasks, cores, SelectBy::Slack), cores)
        }
        Policy::GlobalFifo => from_global(
            tasks,
            simulate_global(tasks, cores, SelectBy::Release),
            cores,
        ),
    };
    if pran_telemetry::enabled() {
        // Non-preemptive dispatch: each task runs contiguously, so its
        // start on the simulated timeline is finish − service.
        for t in tasks {
            let finish = out.finish[t.id].as_micros() as u64;
            let service = t.service.as_micros() as u64;
            pran_telemetry::trace::sim_event(
                "subframe",
                finish,
                &[
                    ("cell", t.cell.into()),
                    ("release_us", (t.release.as_micros() as u64).into()),
                    ("start_us", finish.saturating_sub(service).into()),
                    ("finish_us", finish.into()),
                    ("deadline_us", (t.deadline.as_micros() as u64).into()),
                    ("policy", policy.label().into()),
                ],
            );
        }
    }
    out
}

fn from_global(tasks: &[RtTask], g: GlobalOutcome, _cores: usize) -> SimOutcome {
    let n = tasks.len();
    let mut finish = vec![Duration::ZERO; n];
    let mut missed = vec![false; n];
    for (local, t) in tasks.iter().enumerate() {
        finish[t.id] = g.finish_local[local];
        missed[t.id] = g.missed_local[local];
    }
    SimOutcome {
        finish,
        missed,
        core_busy: g.core_busy,
        makespan: g.makespan,
    }
}

/// Ready-queue ordering key.
enum SelectBy {
    Deadline,
    Release,
    /// `deadline − service` (static laxity).
    Slack,
}

struct GlobalOutcome {
    finish_local: Vec<Duration>,
    missed_local: Vec<bool>,
    core_busy: Vec<Duration>,
    makespan: Duration,
}

fn simulate_global(tasks: &[RtTask], cores: usize, select: SelectBy) -> GlobalOutcome {
    let n = tasks.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (tasks[i].release, tasks[i].id));

    // Min-heap of (free_at, core_index).
    let mut core_free: BinaryHeap<Reverse<(Duration, usize)>> =
        (0..cores).map(|c| Reverse((Duration::ZERO, c))).collect();
    // Min-heap of (key, local_index).
    let mut ready: BinaryHeap<Reverse<(Duration, usize)>> = BinaryHeap::new();

    let mut finish_local = vec![Duration::ZERO; n];
    let mut missed_local = vec![false; n];
    let mut core_busy = vec![Duration::ZERO; cores];
    let mut makespan = Duration::ZERO;

    let key = |i: usize| match select {
        SelectBy::Deadline => tasks[i].deadline,
        SelectBy::Release => tasks[i].release,
        SelectBy::Slack => tasks[i].deadline.saturating_sub(tasks[i].service),
    };

    let mut next = 0usize; // index into `order`
    while next < n || !ready.is_empty() {
        let Reverse((free_at, core)) = *core_free.peek().expect("cores exist");
        if ready.is_empty() {
            // Jump to the next release.
            let t = tasks[order[next]].release.max(free_at);
            while next < n && tasks[order[next]].release <= t {
                let i = order[next];
                ready.push(Reverse((key(i), i)));
                next += 1;
            }
            continue;
        }
        // Start time is when the earliest core frees up; admit everything
        // released by then so the policy chooses among all ready tasks.
        let start = free_at;
        while next < n && tasks[order[next]].release <= start {
            let i = order[next];
            ready.push(Reverse((key(i), i)));
            next += 1;
        }
        let Reverse((_, i)) = ready.pop().expect("ready non-empty");
        let begin = start.max(tasks[i].release);
        let end = begin + tasks[i].service;
        finish_local[i] = end;
        missed_local[i] = end > tasks[i].deadline;
        core_busy[core] += tasks[i].service;
        makespan = makespan.max(end);
        core_free.pop();
        core_free.push(Reverse((end, core)));
    }

    GlobalOutcome {
        finish_local,
        missed_local,
        core_busy,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    fn us(x: u64) -> Duration {
        Duration::from_micros(x)
    }

    fn task(id: usize, release_us: u64, deadline_us: u64, service_us: u64) -> RtTask {
        RtTask {
            id,
            cell: id,
            release: us(release_us),
            deadline: us(deadline_us),
            service: us(service_us),
        }
    }

    #[test]
    fn single_task_meets_deadline() {
        let tasks = [task(0, 0, 2000, 500)];
        let out = simulate(&tasks, 1, Policy::GlobalEdf);
        assert_eq!(out.finish[0], us(500));
        assert_eq!(out.misses(), 0);
        assert_eq!(out.makespan, us(500));
    }

    #[test]
    fn edf_priorities_beat_fifo_on_urgent_late_arrival() {
        // Task 0 released first with a loose deadline; task 1 arrives just
        // after with a tight one. One core. FIFO runs 0 first and misses 1;
        // EDF cannot preempt 0 (non-preemptive) but when both are ready it
        // picks 1 first.
        let tasks = [
            task(0, 0, 10_000, 1_000), // loose
            task(1, 0, 1_500, 800),    // tight
        ];
        let fifo_order_dependent = simulate(&tasks, 1, Policy::GlobalFifo);
        let edf = simulate(&tasks, 1, Policy::GlobalEdf);
        assert_eq!(edf.misses(), 0, "EDF should run the tight task first");
        // FIFO (release ties broken by id) runs task 0 first → task 1 late.
        assert_eq!(fifo_order_dependent.misses(), 1);
    }

    #[test]
    fn work_conserving_across_cores() {
        // Two simultaneous tasks, two cores: both finish at their service.
        let tasks = [task(0, 0, 5000, 1000), task(1, 0, 5000, 1000)];
        let out = simulate(&tasks, 2, Policy::GlobalEdf);
        assert_eq!(out.finish[0], us(1000));
        assert_eq!(out.finish[1], us(1000));
        assert!((out.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_advances_clock() {
        let tasks = [task(0, 0, 2000, 100), task(1, 10_000, 12_000, 100)];
        let out = simulate(&tasks, 1, Policy::GlobalFifo);
        assert_eq!(out.finish[1], us(10_100));
        assert_eq!(out.misses(), 0);
    }

    #[test]
    fn overload_misses_deadlines() {
        // 4 tasks of 1 ms due in 2 ms on one core: at most 2 can make it.
        let tasks: Vec<RtTask> = (0..4).map(|i| task(i, 0, 2000, 1000)).collect();
        let out = simulate(&tasks, 1, Policy::GlobalEdf);
        assert_eq!(out.misses(), 2);
        assert!(out.max_lateness(&tasks) >= ms(1));
    }

    #[test]
    fn partitioned_suffers_from_skew() {
        // All load on cells that map to core 0 of 2 → partitioned misses,
        // global EDF spreads and meets everything.
        let tasks: Vec<RtTask> = (0..4)
            .map(|i| RtTask {
                id: i,
                cell: 2 * i, // all even cells → core 0 under cell % 2
                release: Duration::ZERO,
                deadline: us(2500),
                service: us(1000),
            })
            .collect();
        let part = simulate(&tasks, 2, Policy::Partitioned);
        let edf = simulate(&tasks, 2, Policy::GlobalEdf);
        assert_eq!(edf.misses(), 0, "global EDF fits 2 per core");
        assert!(part.misses() >= 1, "partitioned must overload core 0");
    }

    #[test]
    fn partitioned_matches_global_when_balanced() {
        let tasks: Vec<RtTask> = (0..4)
            .map(|i| RtTask {
                id: i,
                cell: i,
                release: Duration::ZERO,
                deadline: us(3000),
                service: us(1000),
            })
            .collect();
        let part = simulate(&tasks, 2, Policy::Partitioned);
        assert_eq!(part.misses(), 0);
        assert_eq!(part.makespan, us(2000));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let tasks: Vec<RtTask> = (0..6).map(|i| task(i, 0, 10_000, 500)).collect();
        let a = simulate(&tasks, 2, Policy::GlobalEdf);
        let b = simulate(&tasks, 2, Policy::GlobalEdf);
        assert_eq!(a.finish, b.finish);
    }

    #[test]
    fn busy_time_accounts_all_service() {
        let tasks: Vec<RtTask> = (0..5)
            .map(|i| task(i, i as u64 * 100, 10_000, 300))
            .collect();
        for policy in Policy::all() {
            let out = simulate(&tasks, 2, policy);
            let busy: Duration = out.core_busy.iter().sum();
            assert_eq!(busy, us(1500), "{}", policy.label());
        }
    }

    #[test]
    fn llf_orders_by_slack_not_deadline() {
        // A: earlier deadline, lots of slack. B: later deadline, tiny
        // slack. EDF dispatches A first; LLF dispatches B first. (On one
        // core with equal releases EDF is optimal, so the point here is
        // the ordering and *which* task gets sacrificed, not the count.)
        let tasks = [
            RtTask {
                id: 0,
                cell: 0,
                release: us(0),
                deadline: us(1_200),
                service: us(200),
            },
            RtTask {
                id: 1,
                cell: 1,
                release: us(0),
                deadline: us(1_500),
                service: us(1_400),
            },
        ];
        let edf = simulate(&tasks, 1, Policy::GlobalEdf);
        assert!(
            edf.finish[0] < edf.finish[1],
            "EDF runs the early deadline first"
        );
        assert_eq!(edf.misses(), 1, "the long job pays under EDF");
        assert!(!edf.missed[0] && edf.missed[1]);

        let llf = simulate(&tasks, 1, Policy::GlobalLlf);
        assert!(
            llf.finish[1] < llf.finish[0],
            "LLF runs the tight-slack job first"
        );
        assert_eq!(llf.misses(), 1, "the short job pays under LLF");
        assert!(llf.missed[0] && !llf.missed[1]);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        simulate(&[], 0, Policy::GlobalEdf);
    }

    #[test]
    fn empty_task_set() {
        let out = simulate(&[], 4, Policy::GlobalEdf);
        assert_eq!(out.miss_ratio(), 0.0);
        assert_eq!(out.makespan, Duration::ZERO);
    }
}
