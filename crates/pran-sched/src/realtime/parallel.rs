//! Work-stealing parallel subframe executor: the pool-server compute model.
//!
//! The simulator in the parent module scores scheduling *policies*; this
//! executor models (and optionally really runs) the execution *mechanism*
//! PRAN assumes inside each pool server: per-cell subframe tasks are
//! batched onto N cores with cell affinity (`cell % cores`, preserving
//! per-cell processing locality), and idle cores steal whole batches from
//! loaded ones so per-cell load skew cannot strand compute — the property
//! that separates a pooled BBU from a fixed per-cell appliance.
//!
//! Worker threads pull batches from [`crossbeam::deque`] work-stealing
//! queues. Execution is gated on per-core *virtual clocks*: a worker may
//! grab its next batch only while its simulated-core clock is minimal
//! among live cores, so the recorded timeline is a greedy non-preemptive
//! N-core schedule even when the host machine has fewer physical cores
//! than the pool server being modeled. Real per-task payloads (e.g.
//! actual turbo decodes) still execute concurrently on whatever hardware
//! parallelism exists, because the clock is advanced *before* the payload
//! runs.
//!
//! Per task the executor records finish time, signed deadline slack and a
//! miss flag; per run it reports per-core busy time, makespan and steal
//! count — the inputs to E6's miss-fraction-vs-cores curves.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crossbeam::deque::{Stealer, Worker};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use super::RtTask;

/// Knobs of the parallel subframe executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Simulated cores per pool server.
    pub cores: usize,
    /// Subframe tasks dispatched — and stolen — as one unit. Larger
    /// batches amortize dispatch but coarsen load balancing.
    pub batch: usize,
    /// Whether idle cores steal batches from loaded ones. Off, the
    /// executor degrades to statically partitioned per-cell cores.
    pub steal: bool,
}

impl ParallelConfig {
    /// Evaluation defaults: 4 cores, 4-task batches, stealing on.
    pub fn default_eval() -> Self {
        ParallelConfig {
            cores: 4,
            batch: 4,
            steal: true,
        }
    }

    /// Panic on nonsensical values.
    ///
    /// # Panics
    /// Panics if `cores == 0` or `batch == 0`.
    pub fn validate(&self) {
        assert!(self.cores >= 1, "need at least one core");
        assert!(self.batch >= 1, "batch must be at least 1");
    }
}

/// Per-task outcome of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskOutcome {
    /// The task's id.
    pub id: usize,
    /// Finish time on the simulated-core timeline.
    pub finish: Duration,
    /// Signed deadline slack in microseconds (`deadline − finish`;
    /// negative = missed by that much).
    pub slack_us: i64,
    /// Whether the task finished past its deadline.
    pub missed: bool,
    /// Simulated core that executed it.
    pub core: usize,
    /// Whether it ran away from its cell's home core (was stolen).
    pub stolen: bool,
}

/// Aggregate outcome of one parallel run.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// One record per task, sorted by id.
    pub tasks: Vec<TaskOutcome>,
    /// Busy time accumulated per simulated core.
    pub core_busy: Vec<Duration>,
    /// Time the last task finished on the simulated timeline.
    pub makespan: Duration,
    /// Batches executed away from their home core.
    pub steals: u64,
}

impl ParallelOutcome {
    /// Number of missed deadlines.
    pub fn misses(&self) -> usize {
        self.tasks.iter().filter(|t| t.missed).count()
    }

    /// Fraction of tasks missing their deadline.
    pub fn miss_ratio(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.misses() as f64 / self.tasks.len() as f64
        }
    }

    /// Smallest slack across tasks (the tightest call of the run);
    /// `i64::MAX` when no tasks ran.
    pub fn min_slack_us(&self) -> i64 {
        self.tasks
            .iter()
            .map(|t| t.slack_us)
            .min()
            .unwrap_or(i64::MAX)
    }

    /// Mean slack across tasks in microseconds.
    pub fn mean_slack_us(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.tasks.iter().map(|t| t.slack_us as f64).sum::<f64>() / self.tasks.len() as f64
        }
    }

    /// Aggregate core utilization over the makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan.is_zero() || self.core_busy.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.core_busy.iter().map(Duration::as_secs_f64).sum();
        busy / (self.makespan.as_secs_f64() * self.core_busy.len() as f64)
    }
}

/// A batch of same-cell tasks: the unit of dispatch and stealing.
struct Batch {
    home: usize,
    tasks: Vec<RtTask>,
}

/// Clock sentinel for a worker that has drained all reachable work.
const RETIRED: u64 = u64::MAX;

/// The executor. Cheap to construct; all state lives per run.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    config: ParallelConfig,
}

impl ParallelExecutor {
    /// Create an executor.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: ParallelConfig) -> Self {
        config.validate();
        ParallelExecutor { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Execute a task set on the simulated cores (no real payload).
    ///
    /// # Panics
    /// Panics if any task id is out of `0..tasks.len()`.
    pub fn execute(&self, tasks: &[RtTask]) -> ParallelOutcome {
        self.execute_with(tasks, |_| {})
    }

    /// Execute into a caller-owned outcome, reusing its record and
    /// busy-time buffers — the repeated-call entry point for hot loops
    /// (one executor per run, one outcome reused per server per step).
    ///
    /// # Panics
    /// Panics if any task id is out of `0..tasks.len()`.
    pub fn execute_into(&self, tasks: &[RtTask], out: &mut ParallelOutcome) {
        self.execute_into_with(tasks, out, |_| {});
    }

    /// Execute a task set, additionally running `payload` once per task
    /// (e.g. a real turbo decode). Payloads run concurrently on the host's
    /// physical cores; deadline accounting stays on the simulated-core
    /// timeline.
    ///
    /// # Panics
    /// Panics if any task id is out of `0..tasks.len()`.
    pub fn execute_with<F>(&self, tasks: &[RtTask], payload: F) -> ParallelOutcome
    where
        F: Fn(&RtTask) + Sync,
    {
        let mut out = ParallelOutcome {
            tasks: Vec::new(),
            core_busy: Vec::new(),
            makespan: Duration::ZERO,
            steals: 0,
        };
        self.execute_into_with(tasks, &mut out, payload);
        out
    }

    /// [`ParallelExecutor::execute_with`] writing into a caller-owned
    /// outcome (see [`ParallelExecutor::execute_into`]).
    ///
    /// # Panics
    /// Panics if any task id is out of `0..tasks.len()`.
    pub fn execute_into_with<F>(&self, tasks: &[RtTask], out: &mut ParallelOutcome, payload: F)
    where
        F: Fn(&RtTask) + Sync,
    {
        let cfg = self.config;
        let n = tasks.len();
        for t in tasks {
            assert!(t.id < n, "task id {} out of range", t.id);
        }
        out.core_busy.clear();
        out.core_busy.resize(cfg.cores, Duration::ZERO);
        out.makespan = Duration::ZERO;
        out.steals = 0;
        if n == 0 {
            out.tasks.clear();
            return;
        }

        // Batch per cell, then queue each batch on its cell's home core in
        // release order. Owners and thieves both consume from the front
        // (FIFO), so a steal always takes the victim's most urgent
        // pending batch — stealing from the far end would parallelize the
        // *future* while early deadlines serialize on the home core.
        let queues: Vec<Worker<Batch>> = (0..cfg.cores).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Batch>> = queues.iter().map(Worker::stealer).collect();
        for batch in make_batches(tasks, cfg.batch, cfg.cores) {
            queues[batch.home].push(batch);
        }

        let clocks: Vec<AtomicU64> = (0..cfg.cores).map(|_| AtomicU64::new(0)).collect();
        let busy_us: Vec<AtomicU64> = (0..cfg.cores).map(|_| AtomicU64::new(0)).collect();
        let steals = AtomicU64::new(0);
        // Reuse the caller's record buffer as the collection sink.
        let mut record_buf = std::mem::take(&mut out.tasks);
        record_buf.clear();
        record_buf.reserve(n);
        let records: Mutex<Vec<TaskOutcome>> = Mutex::new(record_buf);

        crossbeam::scope(|scope| {
            for core in 0..cfg.cores {
                let clocks = &clocks;
                let busy_us = &busy_us;
                let steals = &steals;
                let records = &records;
                let stealers = &stealers;
                let payload = &payload;
                scope.spawn(move |_| {
                    run_worker(
                        core, stealers, clocks, busy_us, steals, records, &cfg, payload,
                    )
                });
            }
        })
        .expect("worker panicked");

        let mut tasks = records.into_inner();
        tasks.sort_by_key(|t| t.id);
        out.makespan = tasks
            .iter()
            .map(|t| t.finish)
            .max()
            .unwrap_or(Duration::ZERO);
        for (slot, b) in out.core_busy.iter_mut().zip(&busy_us) {
            *slot = Duration::from_micros(b.load(Ordering::Relaxed));
        }
        out.steals = steals.load(Ordering::Relaxed);
        out.tasks = tasks;
    }
}

/// Group tasks into per-cell batches of at most `batch` tasks, preserving
/// input order within a cell, homed on `cell % cores`.
fn make_batches(tasks: &[RtTask], batch: usize, cores: usize) -> Vec<Batch> {
    let mut by_cell: BTreeMap<usize, Vec<RtTask>> = BTreeMap::new();
    for t in tasks {
        by_cell.entry(t.cell).or_default().push(*t);
    }
    let mut batches = Vec::new();
    for (cell, ts) in by_cell {
        for chunk in ts.chunks(batch) {
            batches.push(Batch {
                home: cell % cores,
                tasks: chunk.to_vec(),
            });
        }
    }
    // Earliest work at the front of each queue.
    batches.sort_by_key(|b| (b.tasks[0].release, b.tasks[0].id));
    batches
}

/// One worker's run loop. Grabs are gated on holding the minimal virtual
/// clock among live cores, which makes the recorded timeline a greedy
/// N-core schedule independent of host threading.
#[allow(clippy::too_many_arguments)] // bundle of per-run shared state
fn run_worker<F>(
    core: usize,
    stealers: &[Stealer<Batch>],
    clocks: &[AtomicU64],
    busy_us: &[AtomicU64],
    steals: &AtomicU64,
    records: &Mutex<Vec<TaskOutcome>>,
    cfg: &ParallelConfig,
    payload: &F,
) where
    F: Fn(&RtTask) + Sync,
{
    // Hoisted once per worker: when tracing is off, the loop below must
    // not even build event field arrays.
    let telemetry_on = pran_telemetry::enabled();
    let mut clock = 0u64;
    let mut busy = 0u64;
    loop {
        let min = clocks
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .min()
            .unwrap_or(0);
        if clock > min {
            // A virtually-earlier core must pick first; let it run.
            std::thread::yield_now();
            continue;
        }

        // Consume the home queue through its stealer handle: the vendored
        // deque's owner-side `pop` is LIFO, and release order must be
        // preserved (true `new_fifo` semantics share the front end).
        //
        // Work conservation is the point of stealing, so the trigger is
        // "my next batch has not been released yet", not "my queue is
        // empty" — with queues filled upfront, the latter only fires at
        // the tail of the run while a backlogged peer's ready work
        // serializes. A grabbed own batch cannot be requeued (deques
        // only push at the back), so when a steal lands both batches run
        // here in release order; the own batch would have idled this
        // core until its release anyway.
        let mut grabbed: Vec<Batch> = Vec::new();
        match stealers[core].steal().success() {
            Some(own) => {
                let own_release = own.tasks[0].release.as_micros() as u64;
                if cfg.steal && own_release > clock {
                    // Only raid a peer with strictly more queued work:
                    // between balanced queues a "steal" would just swap
                    // future batches around and shred cell affinity.
                    let own_len = stealers[core].len();
                    if let Some(stolen) = steal_from_peers(core, stealers, own_len) {
                        grabbed.push(stolen);
                    }
                }
                grabbed.push(own);
                grabbed.sort_by_key(|b| (b.tasks[0].release, b.tasks[0].id));
            }
            None if cfg.steal => {
                if let Some(stolen) = steal_from_peers(core, stealers, 0) {
                    grabbed.push(stolen);
                }
            }
            None => {}
        }
        if grabbed.is_empty() {
            // No reachable work left: retire this core.
            busy_us[core].store(busy, Ordering::Release);
            clocks[core].store(RETIRED, Ordering::Release);
            return;
        }

        for batch in &grabbed {
            let stolen = batch.home != core;
            if stolen {
                steals.fetch_add(1, Ordering::Relaxed);
                if telemetry_on {
                    pran_telemetry::trace::sim_event(
                        "rt.steal",
                        clock,
                        &[
                            ("thief", core.into()),
                            ("home", batch.home.into()),
                            ("tasks", batch.tasks.len().into()),
                        ],
                    );
                }
            }

            // Account the whole batch on the virtual timeline *before*
            // running payloads, so other workers can proceed concurrently.
            let mut outcomes = Vec::with_capacity(batch.tasks.len());
            for t in &batch.tasks {
                let release = t.release.as_micros() as u64;
                let service = t.service.as_micros() as u64;
                let start = clock.max(release);
                let finish = start + service;
                busy += service;
                clock = finish;
                let deadline = t.deadline.as_micros() as u64;
                if telemetry_on {
                    pran_telemetry::trace::sim_event(
                        "subframe",
                        finish,
                        &[
                            ("cell", t.cell.into()),
                            ("release_us", release.into()),
                            ("start_us", start.into()),
                            ("finish_us", finish.into()),
                            ("deadline_us", deadline.into()),
                            ("core", core.into()),
                            ("stolen", stolen.into()),
                        ],
                    );
                }
                outcomes.push(TaskOutcome {
                    id: t.id,
                    finish: Duration::from_micros(finish),
                    slack_us: deadline as i64 - finish as i64,
                    missed: finish > deadline,
                    core,
                    stolen,
                });
            }
            clocks[core].store(clock, Ordering::Release);
            records.lock().extend(outcomes);
            for t in &batch.tasks {
                payload(t);
            }
        }
    }
}

/// Steal one batch from the most backlogged peer holding strictly more
/// than `min_len` queued batches. Queues only drain after setup, so an
/// empty victim stays empty — no retry loop needed.
fn steal_from_peers(core: usize, stealers: &[Stealer<Batch>], min_len: usize) -> Option<Batch> {
    let mut victims: Vec<(usize, usize)> = (0..stealers.len())
        .filter(|&v| v != core)
        .map(|v| (v, stealers[v].len()))
        .filter(|&(_, len)| len > min_len)
        .collect();
    victims.sort_by_key(|&(_, len)| std::cmp::Reverse(len));
    victims
        .into_iter()
        .find_map(|(v, _)| stealers[v].steal().success())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` equal tasks on `cells` cells, all released at time zero with a
    /// generous deadline — a pure throughput workload.
    fn burst(n: usize, cells: usize, service_us: u64, deadline_us: u64) -> Vec<RtTask> {
        (0..n)
            .map(|i| RtTask {
                id: i,
                cell: i % cells,
                release: Duration::ZERO,
                deadline: Duration::from_micros(deadline_us),
                service: Duration::from_micros(service_us),
            })
            .collect()
    }

    fn exec(cores: usize, batch: usize, steal: bool) -> ParallelExecutor {
        ParallelExecutor::new(ParallelConfig {
            cores,
            batch,
            steal,
        })
    }

    #[test]
    fn conserves_work_and_orders_records() {
        let tasks = burst(24, 6, 100, 1_000_000);
        let out = exec(4, 2, true).execute(&tasks);
        assert_eq!(out.tasks.len(), 24);
        for (i, t) in out.tasks.iter().enumerate() {
            assert_eq!(t.id, i);
        }
        let busy: Duration = out.core_busy.iter().sum();
        let total: Duration = tasks.iter().map(|t| t.service).sum();
        assert_eq!(busy, total, "work lost or invented");
        assert!(out.makespan >= total / 4, "below the critical-path bound");
        assert!(out.makespan <= total, "worse than serial");
    }

    #[test]
    fn four_simulated_cores_double_batched_throughput() {
        // The tentpole acceptance: a batched turbo-decode-scale burst
        // (hundreds of µs per subframe task) must run ≥ 2× faster on 4
        // simulated cores than on 1. Expected ≈ 4× minus batching slack.
        let tasks = burst(64, 8, 400, 60_000);
        let serial = exec(1, 4, true).execute(&tasks).makespan;
        let quad = exec(4, 4, true).execute(&tasks).makespan;
        assert!(
            quad * 2 <= serial,
            "4-core makespan {quad:?} not 2x better than serial {serial:?}"
        );
    }

    #[test]
    fn stealing_rescues_skewed_cells() {
        // All load on 2 of 8 cells → home cores 0 and 1 only. Without
        // stealing, 4 cores perform like 2; with it, like 4.
        let tasks = burst(32, 2, 200, 1_000_000);
        let pinned = exec(4, 1, false).execute(&tasks);
        let stolen = exec(4, 1, true).execute(&tasks);
        assert_eq!(pinned.steals, 0);
        assert!(stolen.steals > 0, "idle cores must steal");
        assert!(
            stolen.makespan * 3 <= pinned.makespan * 2,
            "stealing {:?} should clearly beat pinned {:?}",
            stolen.makespan,
            pinned.makespan
        );
    }

    #[test]
    fn no_steal_matches_partitioned_model_deterministically() {
        // steal=false is a deterministic static partition: repeated runs
        // agree exactly, and every task runs on its cell's home core.
        let tasks = burst(20, 5, 150, 1_000_000);
        let a = exec(4, 2, false).execute(&tasks);
        let b = exec(4, 2, false).execute(&tasks);
        assert_eq!(a.tasks, b.tasks);
        for t in &a.tasks {
            assert!(!t.stolen);
            assert_eq!(t.core, tasks[t.id].cell % 4);
        }
    }

    #[test]
    fn slack_and_misses_reported() {
        // One core, two tasks of 300 µs each, 500 µs deadline: the first
        // finishes at 300 (slack +200), the second at 600 (slack −100).
        let tasks = burst(2, 1, 300, 500);
        let out = exec(1, 1, false).execute(&tasks);
        assert_eq!(out.misses(), 1);
        assert_eq!(out.min_slack_us(), -100);
        let slacks: Vec<i64> = out.tasks.iter().map(|t| t.slack_us).collect();
        assert_eq!(slacks, vec![200, -100]);
        assert!((out.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn respects_release_times() {
        let tasks = vec![RtTask {
            id: 0,
            cell: 0,
            release: Duration::from_micros(900),
            deadline: Duration::from_micros(2_000),
            service: Duration::from_micros(100),
        }];
        let out = exec(2, 1, true).execute(&tasks);
        assert_eq!(out.tasks[0].finish, Duration::from_micros(1_000));
        assert!(!out.tasks[0].missed);
    }

    #[test]
    fn payload_runs_once_per_task() {
        use std::sync::atomic::AtomicUsize;
        let tasks = burst(12, 3, 50, 1_000_000);
        let calls = AtomicUsize::new(0);
        let out = exec(3, 2, true).execute_with(&tasks, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 12);
        assert_eq!(out.tasks.len(), 12);
    }

    #[test]
    fn empty_task_set() {
        let out = exec(4, 4, true).execute(&[]);
        assert!(out.tasks.is_empty());
        assert_eq!(out.makespan, Duration::ZERO);
        assert_eq!(out.miss_ratio(), 0.0);
        assert_eq!(out.min_slack_us(), i64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        exec(0, 1, true);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        exec(1, 0, true);
    }
}
