//! Task-set generation for the real-time scheduling experiments.
//!
//! Builds per-TTI uplink task sets from the PHY compute model: each active
//! cell emits one task per TTI whose service time comes from its PRB/MCS
//! draw, released after the fronthaul delay and due by the HARQ compute
//! budget. A utilization knob rescales service times so E6 can sweep the
//! pool from comfortable to saturated while keeping the task-time
//! *distribution* realistic.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pran_phy::compute::{CellWorkload, ComputeModel};
use pran_phy::frame::{AntennaConfig, Bandwidth, Direction, COMPUTE_DEADLINE, TTI};
use pran_phy::mcs::Mcs;

use super::RtTask;

/// Configuration of a generated task set.
#[derive(Debug, Clone)]
pub struct TaskSetConfig {
    /// Number of cells emitting tasks.
    pub cells: usize,
    /// Number of TTIs to generate.
    pub ttis: usize,
    /// Cores the set will run on (used to hit `target_utilization`).
    pub cores: usize,
    /// Per-core compute capacity in GOPS.
    pub core_gops: f64,
    /// Desired mean utilization `Σ service / (cores × duration)`.
    pub target_utilization: f64,
    /// Base fronthaul transport delay added to every release.
    pub fronthaul_delay: Duration,
    /// Maximum *extra* per-cell fronthaul delay (cells sit at different
    /// distances). Each extra microsecond delays the release AND tightens
    /// the deadline (the ACK must travel back), so per-cell compute
    /// budgets differ — which is what separates EDF from FIFO.
    pub fronthaul_spread: Duration,
    /// Compute budget per subframe at the base fronthaul delay.
    pub compute_budget: Duration,
    /// Carrier bandwidth of every cell.
    pub bandwidth: Bandwidth,
    /// Antenna configuration of every cell.
    pub antennas: AntennaConfig,
    /// RNG seed.
    pub seed: u64,
}

impl TaskSetConfig {
    /// Evaluation defaults: 20 MHz cells, 2 ms budget, 100 µs fronthaul.
    pub fn default_eval(cells: usize, ttis: usize, cores: usize, target_utilization: f64) -> Self {
        TaskSetConfig {
            cells,
            ttis,
            cores,
            core_gops: 80.0,
            target_utilization,
            fronthaul_delay: Duration::from_micros(100),
            fronthaul_spread: Duration::from_micros(300),
            compute_budget: COMPUTE_DEADLINE,
            bandwidth: Bandwidth::Mhz20,
            antennas: AntennaConfig::pran_default(),
            seed: 0xBB5,
        }
    }
}

/// A generated task set plus its true mean utilization.
#[derive(Debug, Clone)]
pub struct TaskSet {
    /// The generated tasks, ids dense from 0.
    pub tasks: Vec<RtTask>,
    /// Achieved `Σ service / (cores × ttis × TTI)`.
    pub utilization: f64,
}

/// Generate a task set per the configuration.
pub fn generate(cfg: &TaskSetConfig) -> TaskSet {
    assert!(cfg.cells > 0 && cfg.ttis > 0 && cfg.cores > 0);
    assert!(cfg.target_utilization > 0.0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let model = ComputeModel::calibrated();

    // Per-cell extra fronthaul delay, fixed for the whole run.
    let extra_delay: Vec<Duration> = (0..cfg.cells)
        .map(|_| {
            let us = cfg.fronthaul_spread.as_micros() as u64;
            Duration::from_micros(if us == 0 { 0 } else { rng.gen_range(0..=us) })
        })
        .collect();

    // Draw raw service times from the PHY model with random PRB shares and
    // MCS per (cell, tti).
    let mut raw: Vec<(usize, usize, Duration)> = Vec::with_capacity(cfg.cells * cfg.ttis);
    let mut total_service = 0.0f64;
    for tti in 0..cfg.ttis {
        for cell in 0..cfg.cells {
            let util: f64 = rng.gen_range(0.1..1.0);
            let mcs = Mcs::clamped(rng.gen_range(4..=28));
            let w = CellWorkload {
                bandwidth: cfg.bandwidth,
                antennas: cfg.antennas,
                prbs_used: 0,
                mcs,
                direction: Direction::Uplink,
            }
            .at_utilization(util);
            let service = model.subframe_cost(&w).service_time(cfg.core_gops);
            total_service += service.as_secs_f64();
            raw.push((cell, tti, service));
        }
    }

    // Rescale so mean utilization hits the target.
    let horizon = TTI.as_secs_f64() * cfg.ttis as f64 * cfg.cores as f64;
    let scale = cfg.target_utilization * horizon / total_service;
    let mut tasks = Vec::with_capacity(raw.len());
    let mut achieved = 0.0f64;
    for (id, (cell, tti, service)) in raw.into_iter().enumerate() {
        let service = Duration::from_secs_f64(service.as_secs_f64() * scale);
        achieved += service.as_secs_f64();
        let extra = extra_delay[cell];
        let release = TTI * tti as u32 + cfg.fronthaul_delay + extra;
        // The extra distance costs twice: the subframe arrives later and
        // the result must travel back before the same HARQ instant.
        let deadline = TTI * tti as u32 + cfg.fronthaul_delay + cfg.compute_budget
            - extra.min(cfg.compute_budget / 2);
        tasks.push(RtTask {
            id,
            cell,
            release,
            deadline,
            service,
        });
    }

    TaskSet {
        tasks,
        utilization: achieved / horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realtime::{simulate, Policy};

    #[test]
    fn utilization_matches_target() {
        for &target in &[0.3, 0.6, 0.9] {
            let set = generate(&TaskSetConfig::default_eval(8, 50, 4, target));
            assert!(
                (set.utilization - target).abs() < 0.02,
                "target {target}, got {}",
                set.utilization
            );
        }
    }

    #[test]
    fn task_count_and_shape() {
        let cfg = TaskSetConfig::default_eval(5, 20, 2, 0.5);
        let set = generate(&cfg);
        assert_eq!(set.tasks.len(), 100);
        for t in &set.tasks {
            let budget = t.deadline - t.release;
            assert!(budget <= cfg.compute_budget);
            assert!(
                budget + 2 * cfg.fronthaul_spread >= cfg.compute_budget,
                "budget {budget:?} tighter than the spread allows"
            );
            assert!(t.release >= cfg.fronthaul_delay);
            assert!(t.service > Duration::ZERO);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TaskSetConfig::default_eval(4, 10, 2, 0.5);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn low_utilization_meets_all_deadlines_under_edf() {
        let set = generate(&TaskSetConfig::default_eval(8, 100, 4, 0.35));
        let out = simulate(&set.tasks, 4, Policy::GlobalEdf);
        assert_eq!(out.misses(), 0, "misses at 35 % utilization");
    }

    #[test]
    fn saturation_causes_misses() {
        let mut cfg = TaskSetConfig::default_eval(8, 100, 2, 1.15);
        cfg.seed = 99;
        let set = generate(&cfg);
        let out = simulate(&set.tasks, 2, Policy::GlobalEdf);
        assert!(
            out.miss_ratio() > 0.05,
            "overload must miss: {}",
            out.miss_ratio()
        );
    }

    #[test]
    fn edf_no_worse_than_fifo_and_partitioned_at_high_load() {
        // 6 cells on 4 cores: the static partition puts 2 cells on cores
        // 0–1 and 1 cell on cores 2–3, so at 80 % aggregate load the
        // doubled-up cores run hot while global policies absorb the skew.
        let set = generate(&TaskSetConfig::default_eval(6, 300, 4, 0.8));
        let edf = simulate(&set.tasks, 4, Policy::GlobalEdf).miss_ratio();
        let fifo = simulate(&set.tasks, 4, Policy::GlobalFifo).miss_ratio();
        let part = simulate(&set.tasks, 4, Policy::Partitioned).miss_ratio();
        assert!(edf <= fifo + 0.01, "EDF {edf} vs FIFO {fifo}");
        assert!(edf <= part + 0.01, "EDF {edf} vs partitioned {part}");
        assert!(
            part > edf + 0.02,
            "partitioned should suffer skew at high load: {part} vs {edf}"
        );
    }
}
