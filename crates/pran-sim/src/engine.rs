//! A minimal discrete-event engine.
//!
//! Time is `SimTime` (microseconds since simulation start). Events are
//! caller-defined; the engine guarantees deterministic ordering — by time,
//! then by insertion sequence — which keeps whole simulations reproducible
//! from a seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Simulation timestamp in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable timestamp (~584 000 years of microseconds).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a `Duration` (microsecond truncation, saturating).
    ///
    /// `Duration` holds up to `u64::MAX` *seconds*; a plain `as u64` cast
    /// of `as_micros()` would silently wrap durations past ~584 000 years
    /// into small timestamps, scheduling "forever" events into the past.
    /// Saturating to [`SimTime::MAX`] keeps far-future sentinels ordered
    /// after everything real.
    pub fn from_duration(d: Duration) -> SimTime {
        SimTime(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
    }

    /// Convert to a `Duration`.
    pub fn to_duration(self) -> Duration {
        Duration::from_micros(self.0)
    }

    /// This time plus an offset (saturating at [`SimTime::MAX`]).
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(SimTime::from_duration(d).0))
    }
}

/// The event queue driving a simulation.
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

/// Wrapper making the payload inert for ordering purposes.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Engine<E> {
    /// Empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedule an event `delay` after now.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule(self.now.after(delay), event);
    }

    /// Pop the next event, advancing the clock.
    #[allow(clippy::should_implement_trait)] // not an Iterator: popping mutates the clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        self.queue.pop().map(|Reverse((t, _, EventBox(e)))| {
            self.now = t;
            self.processed += 1;
            (t, e)
        })
    }

    /// Peek at the next event time without advancing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Whether anything remains scheduled.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule(SimTime(30), "c");
        e.schedule(SimTime(10), "a");
        e.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| e.next().map(|(_, ev)| ev)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(e.now(), SimTime(30));
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        e.schedule(SimTime(5), 1);
        e.schedule(SimTime(5), 2);
        e.schedule(SimTime(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| e.next().map(|(_, ev)| ev)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule(SimTime(100), "first");
        e.next();
        e.schedule_in(Duration::from_micros(50), "second");
        let (t, _) = e.next().unwrap();
        assert_eq!(t, SimTime(150));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime(100), ());
        e.next();
        e.schedule(SimTime(50), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut e = Engine::new();
        e.schedule(SimTime(42), ());
        assert_eq!(e.peek_time(), Some(SimTime(42)));
        assert_eq!(e.now(), SimTime::ZERO);
        assert!(!e.is_empty());
    }

    #[test]
    fn simtime_duration_roundtrip() {
        let t = SimTime::from_duration(Duration::from_millis(3));
        assert_eq!(t, SimTime(3000));
        assert_eq!(t.to_duration(), Duration::from_millis(3));
        assert_eq!(t.after(Duration::from_micros(7)), SimTime(3007));
    }

    #[test]
    fn from_duration_saturates_past_u64_micros() {
        // u64::MAX seconds = 1e6 · u64::MAX microseconds: far beyond what
        // u64 µs can hold. Must clamp to MAX, not wrap to a small value.
        let huge = Duration::from_secs(u64::MAX);
        assert_eq!(SimTime::from_duration(huge), SimTime::MAX);
        // Exactly representable boundary still converts exactly.
        let edge = Duration::from_micros(u64::MAX);
        assert_eq!(SimTime::from_duration(edge), SimTime::MAX);
    }

    #[test]
    fn after_saturates_instead_of_wrapping() {
        let near_end = SimTime(u64::MAX - 10);
        assert_eq!(
            near_end.after(Duration::from_micros(5)),
            SimTime(u64::MAX - 5)
        );
        // Offsets past the end clamp — they must never wrap into the past.
        assert_eq!(near_end.after(Duration::from_micros(100)), SimTime::MAX);
        assert_eq!(near_end.after(Duration::from_secs(u64::MAX)), SimTime::MAX);
        assert!(near_end.after(Duration::from_secs(u64::MAX)) >= near_end);
    }

    #[test]
    fn saturated_schedule_in_stays_in_the_future() {
        // The panic path this guards: a wrapping `after` would produce a
        // timestamp before `now`, and `schedule` would panic on an event
        // the caller meant as "effectively never".
        let mut e = Engine::new();
        e.schedule(SimTime(u64::MAX - 1), "almost-end");
        e.next();
        e.schedule_in(Duration::from_secs(u64::MAX), "never");
        assert_eq!(e.peek_time(), Some(SimTime::MAX));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn schedule_before_now_panics_with_message() {
        let mut e = Engine::new();
        e.schedule(SimTime(10), ());
        e.next();
        // One microsecond into the past is still the past.
        e.schedule(SimTime(9), ());
    }
}
