//! `pran-sim` — discrete-event simulation of a PRAN deployment.
//!
//! Ties the substrates together: load traces (`pran-traces`) become
//! per-cell compute demand (`pran-phy`), the controller's placement and
//! real-time scheduling decisions come from `pran-sched`, and this crate
//! advances simulated time, injects server failures, and collects the
//! metrics the evaluation reports:
//!
//! * [`engine`] — deterministic event queue and simulated clock;
//! * [`metrics`] — counters and log-scale latency histograms, JSON-able;
//! * [`metro`] — metro-scale sharded runs: 10,000+ cells partitioned into
//!   per-pool shards on worker threads, merged deterministically;
//! * [`pool`] — the pool simulator: epoch-driven placement, sampled per-TTI
//!   task execution, failure injection and failover measurement;
//! * [`service`] — the resident metro: epochs stepped one at a time
//!   against streamed traces, for long-lived soak services that publish
//!   per-epoch metrics while the simulation keeps running;
//! * [`ue`] — microscopic load: UE sessions + link geometry → utilization,
//!   traffic-weighted MCS and admission blocking (an alternative trace
//!   source to `pran-traces`' macroscopic generator).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod metrics;
pub mod metro;
pub mod pool;
pub mod service;
pub mod ue;

pub use engine::{Engine, SimTime};
pub use metrics::{LogHistogram, PoolMetrics};
pub use metro::{MetroConfig, MetroConfigError, MetroError, MetroReport, MetroSimulator};
pub use pool::{
    FailoverRecord, FailureSpec, LinkFault, PoolConfig, PoolConfigError, PoolSimulator, SimReport,
};
pub use service::{EpochRecord, EpochStatus, ResidentMetro};
