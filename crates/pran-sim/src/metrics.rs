//! Simulation metrics: counters and log-scale histograms.
//!
//! The base-2 [`LogHistogram`] now lives in `pran-telemetry` (it is the
//! registry's histogram instrument) and is re-exported here so existing
//! `pran_sim::LogHistogram` users keep working. [`PoolMetrics`] remains
//! the pool simulation's own aggregate, serialized to JSON so the
//! experiment harness can emit machine-readable results.

use serde::{Deserialize, Serialize};

pub use pran_telemetry::metrics::LogHistogram;

/// Top-level metrics a pool simulation produces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolMetrics {
    /// Subframe tasks generated.
    pub tasks_total: u64,
    /// Tasks finishing past their deadline.
    pub deadline_misses: u64,
    /// Tasks never run (their server was down).
    pub tasks_lost: u64,
    /// Subset of `tasks_lost` whose uplink subframe report was dropped or
    /// rate-limited by the fronthaul fault model (zero when no
    /// [`LinkFault`](crate::pool::LinkFault) is configured).
    pub reports_lost: u64,
    /// Cell migrations executed.
    pub migrations: u64,
    /// Batches executed away from their home core (parallel executor
    /// only; zero under the analytic scheduler model).
    pub steals: u64,
    /// Placement epochs executed.
    pub epochs: u64,
    /// Server-count samples (one per epoch).
    pub servers_used: Vec<usize>,
    /// Aggregate GOPS demand samples (one per epoch).
    pub demand_gops: Vec<f64>,
    /// Distribution of per-cell outage durations after failures.
    pub outages: LogHistogram,
    /// Distribution of task response times.
    pub response_times: LogHistogram,
    /// Distribution of positive deadline slack (parallel executor only):
    /// how much budget remained when each on-time task finished. Missed
    /// tasks are counted in `deadline_misses`, not here.
    pub deadline_slack: LogHistogram,
}

impl PoolMetrics {
    /// Deadline-miss ratio over all generated tasks.
    pub fn miss_ratio(&self) -> f64 {
        if self.tasks_total == 0 {
            0.0
        } else {
            (self.deadline_misses + self.tasks_lost) as f64 / self.tasks_total as f64
        }
    }

    /// Mean servers used across epochs.
    pub fn mean_servers(&self) -> f64 {
        if self.servers_used.is_empty() {
            0.0
        } else {
            self.servers_used.iter().sum::<usize>() as f64 / self.servers_used.len() as f64
        }
    }

    /// Peak servers used.
    pub fn peak_servers(&self) -> usize {
        self.servers_used.iter().copied().max().unwrap_or(0)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn us(x: u64) -> Duration {
        Duration::from_micros(x)
    }

    #[test]
    fn metrics_ratios() {
        let m = PoolMetrics {
            tasks_total: 100,
            deadline_misses: 3,
            tasks_lost: 2,
            servers_used: vec![3, 5, 4],
            ..Default::default()
        };
        assert!((m.miss_ratio() - 0.05).abs() < 1e-12);
        assert!((m.mean_servers() - 4.0).abs() < 1e-12);
        assert_eq!(m.peak_servers(), 5);
    }

    #[test]
    fn metrics_json_roundtrip() {
        let mut m = PoolMetrics {
            tasks_total: 7,
            ..Default::default()
        };
        m.outages.record(us(1234));
        let json = m.to_json();
        let back: PoolMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
