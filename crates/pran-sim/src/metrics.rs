//! Simulation metrics: counters and log-scale histograms.
//!
//! Deliberately simple and allocation-light: a fixed-bucket base-2 log
//! histogram covers the microsecond-to-minute range PRAN's latencies span,
//! and everything serializes to JSON so the experiment harness can emit
//! machine-readable results.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A base-2 logarithmic histogram over microsecond values.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` µs; bucket 0 also absorbs
/// sub-microsecond samples. 40 buckets reach ~12.7 days.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    /// Sum in microseconds (for the mean).
    sum_us: u64,
    max_us: u64,
}

const BUCKETS: usize = 40;

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Record a duration.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded durations.
    pub fn mean(&self) -> Duration {
        match self.sum_us.checked_div(self.count) {
            Some(mean) => Duration::from_micros(mean),
            None => Duration::ZERO,
        }
    }

    /// Maximum recorded duration.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Approximate quantile (upper bucket edge of the q-quantile bucket).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        self.max()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Top-level metrics a pool simulation produces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolMetrics {
    /// Subframe tasks generated.
    pub tasks_total: u64,
    /// Tasks finishing past their deadline.
    pub deadline_misses: u64,
    /// Tasks never run (their server was down).
    pub tasks_lost: u64,
    /// Cell migrations executed.
    pub migrations: u64,
    /// Batches executed away from their home core (parallel executor
    /// only; zero under the analytic scheduler model).
    pub steals: u64,
    /// Placement epochs executed.
    pub epochs: u64,
    /// Server-count samples (one per epoch).
    pub servers_used: Vec<usize>,
    /// Aggregate GOPS demand samples (one per epoch).
    pub demand_gops: Vec<f64>,
    /// Distribution of per-cell outage durations after failures.
    pub outages: LogHistogram,
    /// Distribution of task response times.
    pub response_times: LogHistogram,
    /// Distribution of positive deadline slack (parallel executor only):
    /// how much budget remained when each on-time task finished. Missed
    /// tasks are counted in `deadline_misses`, not here.
    pub deadline_slack: LogHistogram,
}

impl PoolMetrics {
    /// Deadline-miss ratio over all generated tasks.
    pub fn miss_ratio(&self) -> f64 {
        if self.tasks_total == 0 {
            0.0
        } else {
            (self.deadline_misses + self.tasks_lost) as f64 / self.tasks_total as f64
        }
    }

    /// Mean servers used across epochs.
    pub fn mean_servers(&self) -> f64 {
        if self.servers_used.is_empty() {
            0.0
        } else {
            self.servers_used.iter().sum::<usize>() as f64 / self.servers_used.len() as f64
        }
    }

    /// Peak servers used.
    pub fn peak_servers(&self) -> usize {
        self.servers_used.iter().copied().max().unwrap_or(0)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> Duration {
        Duration::from_micros(x)
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = LogHistogram::new();
        for &v in &[10u64, 20, 40, 80] {
            h.record(us(v));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), us(37));
        assert_eq!(h.max(), us(80));
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(us(i));
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        // Median of 1..=1000 ≈ 500 µs → bucket edge within [512, 1024].
        assert!(q50 >= us(256) && q50 <= us(1024), "q50 {q50:?}");
    }

    #[test]
    fn histogram_zero_and_huge() {
        let mut h = LogHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert!(
            h.quantile(1.0) >= Duration::from_secs(3600) || h.max() >= Duration::from_secs(3600)
        );
    }

    #[test]
    fn histogram_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(us(5));
        b.record(us(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), us(500));
    }

    #[test]
    fn empty_histogram_safe() {
        let h = LogHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn metrics_ratios() {
        let m = PoolMetrics {
            tasks_total: 100,
            deadline_misses: 3,
            tasks_lost: 2,
            servers_used: vec![3, 5, 4],
            ..Default::default()
        };
        assert!((m.miss_ratio() - 0.05).abs() < 1e-12);
        assert!((m.mean_servers() - 4.0).abs() < 1e-12);
        assert_eq!(m.peak_servers(), 5);
    }

    #[test]
    fn metrics_json_roundtrip() {
        let mut m = PoolMetrics {
            tasks_total: 7,
            ..Default::default()
        };
        m.outages.record(us(1234));
        let json = m.to_json();
        let back: PoolMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
