//! Simulation metrics: counters and log-scale histograms.
//!
//! The base-2 [`LogHistogram`] now lives in `pran-telemetry` (it is the
//! registry's histogram instrument) and is re-exported here so existing
//! `pran_sim::LogHistogram` users keep working. [`PoolMetrics`] remains
//! the pool simulation's own aggregate, serialized to JSON so the
//! experiment harness can emit machine-readable results.

use serde::{Deserialize, Serialize};

pub use pran_telemetry::metrics::LogHistogram;

/// Top-level metrics a pool simulation produces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolMetrics {
    /// Subframe tasks generated.
    pub tasks_total: u64,
    /// Tasks finishing past their deadline.
    pub deadline_misses: u64,
    /// Tasks never run (their server was down).
    pub tasks_lost: u64,
    /// Subset of `tasks_lost` whose uplink subframe report was dropped or
    /// rate-limited by the fronthaul fault model (zero when no
    /// [`LinkFault`](crate::pool::LinkFault) is configured).
    pub reports_lost: u64,
    /// Cell migrations executed.
    pub migrations: u64,
    /// Batches executed away from their home core (parallel executor
    /// only; zero under the analytic scheduler model).
    pub steals: u64,
    /// Placement epochs executed.
    pub epochs: u64,
    /// Server-count samples (one per epoch).
    pub servers_used: Vec<usize>,
    /// Aggregate GOPS demand samples (one per epoch).
    pub demand_gops: Vec<f64>,
    /// Distribution of per-cell outage durations after failures.
    pub outages: LogHistogram,
    /// Distribution of task response times.
    pub response_times: LogHistogram,
    /// Distribution of positive deadline slack (parallel executor only):
    /// how much budget remained when each on-time task finished. Missed
    /// tasks are counted in `deadline_misses`, not here.
    pub deadline_slack: LogHistogram,
}

impl PoolMetrics {
    /// Deadline-miss ratio over all generated tasks.
    pub fn miss_ratio(&self) -> f64 {
        if self.tasks_total == 0 {
            0.0
        } else {
            (self.deadline_misses + self.tasks_lost) as f64 / self.tasks_total as f64
        }
    }

    /// Mean servers used across epochs.
    pub fn mean_servers(&self) -> f64 {
        if self.servers_used.is_empty() {
            0.0
        } else {
            self.servers_used.iter().sum::<usize>() as f64 / self.servers_used.len() as f64
        }
    }

    /// Peak servers used.
    pub fn peak_servers(&self) -> usize {
        self.servers_used.iter().copied().max().unwrap_or(0)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialize")
    }

    /// Reset every counter, series and histogram in place, keeping all
    /// allocations (histogram buckets, epoch-series capacity) — the
    /// resident service reuses one instance per epoch without touching
    /// the heap.
    pub fn reset(&mut self) {
        self.tasks_total = 0;
        self.deadline_misses = 0;
        self.tasks_lost = 0;
        self.reports_lost = 0;
        self.migrations = 0;
        self.steals = 0;
        self.epochs = 0;
        self.servers_used.clear();
        self.demand_gops.clear();
        self.outages.reset();
        self.response_times.reset();
        self.deadline_slack.reset();
    }

    /// Fold another pool's metrics into this one (the metro merge).
    ///
    /// Counters add, histograms merge bucket-wise, and the per-epoch
    /// series (`servers_used`, `demand_gops`) add element-wise so the
    /// merged series reads "total across pools at epoch *e*". Shards of a
    /// metro run share the epoch grid; when epoch counts differ the longer
    /// tail is kept as-is. The operation is commutative and associative,
    /// so the merged result is independent of merge order.
    pub fn merge(&mut self, other: &PoolMetrics) {
        self.tasks_total += other.tasks_total;
        self.deadline_misses += other.deadline_misses;
        self.tasks_lost += other.tasks_lost;
        self.reports_lost += other.reports_lost;
        self.migrations += other.migrations;
        self.steals += other.steals;
        self.epochs = self.epochs.max(other.epochs);
        if self.servers_used.len() < other.servers_used.len() {
            self.servers_used.resize(other.servers_used.len(), 0);
        }
        for (mine, theirs) in self.servers_used.iter_mut().zip(&other.servers_used) {
            *mine += theirs;
        }
        if self.demand_gops.len() < other.demand_gops.len() {
            self.demand_gops.resize(other.demand_gops.len(), 0.0);
        }
        for (mine, theirs) in self.demand_gops.iter_mut().zip(&other.demand_gops) {
            *mine += theirs;
        }
        self.outages.merge(&other.outages);
        self.response_times.merge(&other.response_times);
        self.deadline_slack.merge(&other.deadline_slack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn us(x: u64) -> Duration {
        Duration::from_micros(x)
    }

    #[test]
    fn metrics_ratios() {
        let m = PoolMetrics {
            tasks_total: 100,
            deadline_misses: 3,
            tasks_lost: 2,
            servers_used: vec![3, 5, 4],
            ..Default::default()
        };
        assert!((m.miss_ratio() - 0.05).abs() < 1e-12);
        assert!((m.mean_servers() - 4.0).abs() < 1e-12);
        assert_eq!(m.peak_servers(), 5);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |t: u64, misses: u64, used: Vec<usize>, us_outage: u64| {
            let mut m = PoolMetrics {
                tasks_total: t,
                deadline_misses: misses,
                epochs: used.len() as u64,
                servers_used: used,
                ..Default::default()
            };
            m.outages.record(us(us_outage));
            m
        };
        let parts = [
            mk(100, 2, vec![3, 4], 500),
            mk(50, 1, vec![1, 1], 900),
            mk(75, 0, vec![2, 5], 1300),
        ];
        let mut fwd = PoolMetrics::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = PoolMetrics::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.tasks_total, 225);
        assert_eq!(fwd.servers_used, vec![6, 10]);
        assert_eq!(fwd.epochs, 2);
        assert_eq!(fwd.outages.count(), 3);
    }

    #[test]
    fn metrics_json_roundtrip() {
        let mut m = PoolMetrics {
            tasks_total: 7,
            ..Default::default()
        };
        m.outages.record(us(1234));
        let json = m.to_json();
        let back: PoolMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
