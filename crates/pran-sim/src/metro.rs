//! Metro-scale sharded simulation: a city of pools in one process.
//!
//! PRAN's statistical-multiplexing argument only bites at scale — the gap
//! between "peak of the sum" and "sum of the peaks" grows with the number
//! of cells pooled — but one [`PoolSimulator`] runs a single pool over
//! tens of cells. The [`MetroSimulator`] partitions a 10,000+ cell metro
//! into per-pool *shards*, runs each shard's full pool simulation
//! (placement epochs, per-TTI tasks, failures, fronthaul faults) on a
//! small crew of OS worker threads, and merges the per-shard
//! [`SimReport`]s into one [`MetroReport`].
//!
//! # Determinism
//!
//! The merged output is a pure function of [`MetroConfig`]:
//!
//! * every shard's trace seed is derived from the root seed with a
//!   splitmix64 mix ([`MetroConfig::shard_seed`]) — stable regardless of
//!   which worker runs the shard or in what order;
//! * each shard's simulation is single-threaded and deterministic, so its
//!   `SimReport` depends only on its seed and cell count;
//! * merging folds shard reports in shard-index order after all workers
//!   join, never in completion order (and [`PoolMetrics::merge`] is
//!   commutative anyway);
//! * telemetry events are stamped with a per-shard label
//!   ([`pran_telemetry::trace::set_shard`]) and canonicalized into
//!   shard-sorted order after the join, so a drained trace export is
//!   byte-identical across 1, 2 or 8 workers and any shard execution
//!   order (`tests/tests/metro_determinism.rs` proves all of this).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use pran_traces::{generate, TraceConfig};
use serde::{Deserialize, Serialize};

use crate::metrics::PoolMetrics;
use crate::pool::{PoolConfig, PoolConfigError, PoolSimulator, SimReport};

/// Shape of a metro-scale run: cell count, shard partition, worker crew
/// and the root seed every shard seed is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetroConfig {
    /// Total cells across the metro.
    pub cells: usize,
    /// Number of per-pool shards the cells are partitioned into.
    pub shards: usize,
    /// OS worker threads running shards (a worker picks up the next
    /// unstarted shard; more workers than shards just idle).
    pub workers: usize,
    /// Servers provisioned in each shard's pool.
    pub servers_per_shard: usize,
    /// Root seed; shard `s` simulates with [`MetroConfig::shard_seed`]`(s)`.
    pub seed: u64,
}

impl MetroConfig {
    /// Evaluation defaults for a metro of `cells` cells in `shards`
    /// pools: up to 8 workers and one server per two cells of the largest
    /// shard (ample for the default diurnal trace at 10 % headroom).
    pub fn default_eval(cells: usize, shards: usize) -> Self {
        let max_shard_cells = cells.div_ceil(shards.max(1));
        MetroConfig {
            cells,
            shards,
            workers: shards.clamp(1, 8),
            servers_per_shard: max_shard_cells.div_ceil(2).max(1),
            seed: 1,
        }
    }

    /// Reject degenerate shapes with a typed error.
    pub fn validate(&self) -> Result<(), MetroConfigError> {
        if self.cells == 0 {
            return Err(MetroConfigError::NoCells);
        }
        if self.shards == 0 {
            return Err(MetroConfigError::NoShards);
        }
        if self.workers == 0 {
            return Err(MetroConfigError::NoWorkers);
        }
        if self.servers_per_shard == 0 {
            return Err(MetroConfigError::NoServers);
        }
        if self.shards > self.cells {
            return Err(MetroConfigError::MoreShardsThanCells {
                shards: self.shards,
                cells: self.cells,
            });
        }
        Ok(())
    }

    /// Cells in shard `shard` (balanced partition: the first
    /// `cells % shards` shards get one extra cell).
    pub fn shard_cells(&self, shard: usize) -> usize {
        let base = self.cells / self.shards;
        let extra = self.cells % self.shards;
        base + usize::from(shard < extra)
    }

    /// The seed shard `shard` simulates with: a splitmix64 mix of the
    /// root seed and the shard index, so shard streams are decorrelated
    /// yet fully determined by (`seed`, `shard`) — never by scheduling.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a [`MetroConfig`] cannot drive a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetroConfigError {
    /// `cells == 0`.
    NoCells,
    /// `shards == 0`.
    NoShards,
    /// `workers == 0`.
    NoWorkers,
    /// `servers_per_shard == 0`.
    NoServers,
    /// More shards than cells: some shards would be empty.
    MoreShardsThanCells {
        /// Configured shard count.
        shards: usize,
        /// Configured cell count.
        cells: usize,
    },
}

impl std::fmt::Display for MetroConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetroConfigError::NoCells => write!(f, "metro needs at least one cell"),
            MetroConfigError::NoShards => write!(f, "metro needs at least one shard"),
            MetroConfigError::NoWorkers => write!(f, "metro needs at least one worker thread"),
            MetroConfigError::NoServers => {
                write!(f, "each shard needs at least one server")
            }
            MetroConfigError::MoreShardsThanCells { shards, cells } => {
                write!(f, "{shards} shards over {cells} cells leaves empty shards")
            }
        }
    }
}

impl std::error::Error for MetroConfigError {}

/// One shard's outcome within a metro run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Cells this shard simulated.
    pub cells: usize,
    /// Seed the shard ran with (for standalone reproduction).
    pub seed: u64,
    /// The shard's full pool report.
    pub report: SimReport,
}

/// Merged output of a metro run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetroReport {
    /// Metro-wide metrics: counters summed, histograms merged, per-epoch
    /// series added element-wise across shards (see [`PoolMetrics::merge`]).
    pub metrics: PoolMetrics,
    /// Per-shard reports, in shard-index order.
    pub shards: Vec<ShardReport>,
}

impl MetroReport {
    /// Sum over shards of each shard's peak epoch demand — the capacity a
    /// deployment would provision if every shard dimensioned for its own
    /// peak.
    pub fn sum_of_shard_peaks(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| {
                s.report
                    .metrics
                    .demand_gops
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max)
            })
            .sum()
    }

    /// Peak over epochs of the metro-wide total demand — what one fully
    /// pooled deployment would provision.
    pub fn peak_of_total(&self) -> f64 {
        self.metrics
            .demand_gops
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
    }

    /// Statistical-multiplexing gain forfeited by sharding: sum of shard
    /// peaks over the peak of the metro total (≥ 1; 1.0 at one shard).
    pub fn sharding_gain(&self) -> f64 {
        let peak = self.peak_of_total();
        if peak <= 0.0 {
            1.0
        } else {
            self.sum_of_shard_peaks() / peak
        }
    }
}

/// The sharded metro simulator (see the module docs).
pub struct MetroSimulator {
    config: MetroConfig,
    pool: PoolConfig,
    trace: TraceConfig,
}

impl MetroSimulator {
    /// Build a metro run with the evaluation pool defaults: each shard
    /// gets `servers_per_shard` servers, warm-start placement enabled,
    /// and a diurnal [`TraceConfig::default_day`] trace cut to the
    /// shard's cell count and seed.
    pub fn try_new(config: MetroConfig) -> Result<Self, MetroError> {
        let mut pool = PoolConfig::default_eval(config.servers_per_shard.max(1));
        pool.warm = Some(pran_sched::placement::WarmConfig::default_eval());
        let trace = TraceConfig::default_day(config.cells.max(1), config.seed);
        Self::with_pool(config, pool, trace)
    }

    /// Build a metro run over an explicit per-shard pool configuration
    /// and trace template (the template's `num_cells` and `seed` are
    /// overridden per shard; `fronthaul.seed`, when set, is re-derived
    /// per shard so fault streams stay independent across shards).
    pub fn with_pool(
        config: MetroConfig,
        pool: PoolConfig,
        trace: TraceConfig,
    ) -> Result<Self, MetroError> {
        config.validate().map_err(MetroError::Metro)?;
        pool.validate().map_err(MetroError::Pool)?;
        Ok(MetroSimulator {
            config,
            pool,
            trace,
        })
    }

    /// The metro configuration.
    pub fn config(&self) -> MetroConfig {
        self.config
    }

    /// Run every shard (in index order hand-out) and merge.
    pub fn run(&self) -> MetroReport {
        let order: Vec<usize> = (0..self.config.shards).collect();
        self.run_ordered(&order)
    }

    /// Run every shard through [`PoolSimulator::run_reference`] — the
    /// seed-faithful allocating epoch path — and merge. The differential
    /// oracle for [`MetroSimulator::run`]: merged reports must be
    /// byte-identical across the two paths and any worker count.
    pub fn run_reference(&self) -> MetroReport {
        let order: Vec<usize> = (0..self.config.shards).collect();
        self.run_ordered_impl(&order, true)
    }

    /// Run with an explicit shard hand-out order — a determinism test
    /// hook: any permutation of `0..shards` must produce the same merged
    /// report and telemetry export.
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of `0..shards`.
    pub fn run_ordered(&self, order: &[usize]) -> MetroReport {
        self.run_ordered_impl(order, false)
    }

    fn run_ordered_impl(&self, order: &[usize], reference: bool) -> MetroReport {
        let shards = self.config.shards;
        {
            let mut seen = vec![false; shards];
            assert_eq!(order.len(), shards, "order must cover every shard");
            for &s in order {
                assert!(s < shards && !seen[s], "order must be a permutation");
                seen[s] = true;
            }
        }

        let slots: Vec<OnceLock<ShardReport>> = (0..shards).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let workers = self.config.workers.min(shards);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        let Some(&shard) = order.get(i) else { break };
                        let report = self.run_shard(shard, reference);
                        slots[shard].set(report).expect("one worker per shard");
                    }
                    // Flush this thread's buffer *inside* the closure:
                    // `thread::scope` waits for closures, not thread-local
                    // destructors, so an exit-time flush could race the
                    // post-run canonicalize and lose this worker's events.
                    pran_telemetry::trace::flush();
                });
            }
        });

        // One canonical event order regardless of worker count or
        // hand-out order: sort (stably) by shard label.
        if pran_telemetry::enabled() {
            pran_telemetry::trace::canonicalize_by_shard();
        }

        let mut metrics = PoolMetrics::default();
        let mut reports = Vec::with_capacity(shards);
        for slot in slots {
            let shard_report = slot.into_inner().expect("every shard ran");
            metrics.merge(&shard_report.report.metrics);
            reports.push(shard_report);
        }
        MetroReport {
            metrics,
            shards: reports,
        }
    }

    /// Run one shard's pool simulation on the calling thread.
    fn run_shard(&self, shard: usize, reference: bool) -> ShardReport {
        let cells = self.config.shard_cells(shard);
        let seed = self.config.shard_seed(shard);
        pran_telemetry::trace::set_shard(Some(shard as u64));
        let mut trace_cfg = self.trace.clone();
        trace_cfg.num_cells = cells;
        trace_cfg.seed = seed;
        let trace = generate(&trace_cfg);
        let mut pool_cfg = self.pool.clone();
        if let Some(lf) = pool_cfg.fronthaul.as_mut() {
            // Per-shard fault streams: without this, cell c of every
            // shard would replay the same loss sequence.
            lf.seed ^= seed;
        }
        let mut pool = PoolSimulator::new(trace, pool_cfg);
        let report = if reference {
            pool.run_reference()
        } else {
            pool.run()
        };
        pran_telemetry::trace::set_shard(None);
        ShardReport {
            shard,
            cells,
            seed,
            report,
        }
    }
}

/// Why a [`MetroSimulator`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetroError {
    /// The metro shape is degenerate.
    Metro(MetroConfigError),
    /// The per-shard pool configuration is invalid.
    Pool(PoolConfigError),
}

impl std::fmt::Display for MetroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetroError::Metro(e) => write!(f, "{e}"),
            MetroError::Pool(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MetroError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_metro(cells: usize, shards: usize) -> MetroSimulator {
        let mut cfg = MetroConfig::default_eval(cells, shards);
        cfg.seed = 42;
        let mut sim = MetroSimulator::try_new(cfg).unwrap();
        // Keep unit tests quick: 2 simulated hours.
        sim.trace.duration_seconds = 2.0 * 3600.0;
        sim.trace.step_seconds = 120.0;
        sim
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        let cfg = MetroConfig::default_eval(103, 8);
        let sizes: Vec<usize> = (0..8).map(|s| cfg.shard_cells(s)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn shard_seeds_are_stable_and_distinct() {
        let cfg = MetroConfig::default_eval(100, 8);
        let seeds: Vec<u64> = (0..8).map(|s| cfg.shard_seed(s)).collect();
        assert_eq!(seeds, (0..8).map(|s| cfg.shard_seed(s)).collect::<Vec<_>>());
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision: {seeds:?}");
    }

    #[test]
    fn validate_rejects_degenerate_shapes() {
        let ok = MetroConfig::default_eval(100, 4);
        assert_eq!(ok.validate(), Ok(()));
        let mut c = ok;
        c.cells = 0;
        assert_eq!(c.validate(), Err(MetroConfigError::NoCells));
        let mut c = ok;
        c.shards = 0;
        assert_eq!(c.validate(), Err(MetroConfigError::NoShards));
        let mut c = ok;
        c.workers = 0;
        assert_eq!(c.validate(), Err(MetroConfigError::NoWorkers));
        let mut c = ok;
        c.servers_per_shard = 0;
        assert_eq!(c.validate(), Err(MetroConfigError::NoServers));
        let mut c = ok;
        c.shards = 101;
        assert!(matches!(
            c.validate(),
            Err(MetroConfigError::MoreShardsThanCells { .. })
        ));
    }

    #[test]
    fn merged_totals_equal_shard_sums() {
        let sim = small_metro(60, 4);
        let report = sim.run();
        assert_eq!(report.shards.len(), 4);
        let task_sum: u64 = report
            .shards
            .iter()
            .map(|s| s.report.metrics.tasks_total)
            .sum();
        assert_eq!(report.metrics.tasks_total, task_sum);
        assert!(task_sum > 0);
        let cells: usize = report.shards.iter().map(|s| s.cells).sum();
        assert_eq!(cells, 60);
        // Element-wise servers_used sum at epoch 0.
        let used0: usize = report
            .shards
            .iter()
            .map(|s| s.report.metrics.servers_used[0])
            .sum();
        assert_eq!(report.metrics.servers_used[0], used0);
    }

    #[test]
    fn sharding_gain_is_at_least_one() {
        let report = small_metro(60, 4).run();
        assert!(
            report.sharding_gain() >= 1.0 - 1e-12,
            "{}",
            report.sharding_gain()
        );
        assert!(report.peak_of_total() > 0.0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn run_ordered_rejects_bad_orders() {
        let sim = small_metro(20, 4);
        sim.run_ordered(&[0, 1, 2, 2]);
    }
}
