//! The pool simulator: traces in, deadline/miss/migration metrics out.
//!
//! Drives a full PRAN deployment at epoch granularity over a load trace:
//! each placement epoch the controller (re)packs cells onto live servers
//! (incremental repack — bounded churn), then the simulator samples TTIs
//! from every trace step, generates per-cell uplink tasks from the PHY
//! compute model and runs the configured real-time scheduler per server.
//! Server failures displace cells; failover is measured as the per-cell
//! outage between failure and re-placement.

use std::time::Duration;

use bytes::Bytes;
use pran_fronthaul::fault::{FaultConfig, FaultInjector, Outcome};
use pran_insight::slo::{Alert, EpochSample, SloMonitor, SloPolicy};
use pran_phy::compute::{CellWorkload, ComputeModel};
use pran_phy::frame::{AntennaConfig, Bandwidth, Direction, COMPUTE_DEADLINE, TTI};
use pran_phy::mcs::Mcs;
use pran_sched::placement::migration::incremental_repack;
use pran_sched::placement::warm::{WarmConfig, WarmPlacer};
use pran_sched::placement::{Allowed, CellDemand, Placement, PlacementInstance, ServerSpec};
use pran_sched::realtime::{
    simulate, simulate_into, BatchOutcome, ParallelConfig, ParallelExecutor, ParallelOutcome,
    Policy, RtTask, SimScratch, TaskBatch,
};
use pran_traces::Trace;

use crate::engine::{Engine, SimTime};
use crate::metrics::PoolMetrics;

/// Static configuration of a pool simulation.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of servers in the pool.
    pub servers: usize,
    /// Capacity of each server in GOPS.
    pub server_capacity_gops: f64,
    /// Cores per server (core capacity = server capacity / cores).
    pub cores_per_server: usize,
    /// Real-time scheduling policy within each server.
    pub scheduler: Policy,
    /// When set, subframe execution per server runs through the
    /// work-stealing [`ParallelExecutor`] (its `cores` override
    /// `cores_per_server`) and slack/steal metrics are recorded; when
    /// `None`, the analytic [`simulate`] model scores the policy instead.
    pub parallel: Option<ParallelConfig>,
    /// Trace steps per placement epoch.
    pub epoch_steps: usize,
    /// TTIs sampled (and fully simulated) per trace step.
    pub ttis_per_step: usize,
    /// Headroom multiplier applied to predicted demand when placing.
    pub headroom: f64,
    /// Failure detection delay (heartbeat timeout).
    pub detection_delay: Duration,
    /// Controller replanning overhead per failover.
    pub replan_overhead: Duration,
    /// State-transfer time per migrated cell.
    pub migration_time_per_cell: Duration,
    /// Radio configuration used to convert utilization into compute.
    pub bandwidth: Bandwidth,
    /// Antenna configuration of all cells.
    pub antennas: AntennaConfig,
    /// Assumed traffic-weighted MCS.
    pub mcs: Mcs,
    /// Optional per-cell fronthaul fault model applied to uplink subframe
    /// transport (`None` = ideal fronthaul, the pre-existing behaviour).
    pub fronthaul: Option<LinkFault>,
    /// When set, an online [`SloMonitor`] observes the pool once per
    /// epoch (cumulative miss ratio, demand/capacity utilization, outage
    /// p99, lost reports) and its alerts land in
    /// [`SimReport::alerts`] — plus `insight.alert` trace events when
    /// telemetry is on.
    pub slo: Option<SloPolicy>,
    /// When set, epoch placement runs through the warm-start
    /// [`WarmPlacer`] (hysteresis-banded bookings, repack work
    /// proportional to band-crossing cells) instead of a full
    /// [`incremental_repack`] against fresh demands. `None` preserves the
    /// pre-existing cold-path behaviour.
    pub warm: Option<WarmConfig>,
}

/// Per-cell fronthaul degradation for a pool run.
///
/// Each cell gets its own [`FaultInjector`] seeded `seed + cell`, so loss
/// streams are independent across cells yet fully reproducible. Injector
/// token buckets advance on the simulation clock ([`FaultInjector::advance_to`]
/// at each task's absolute release instant), not on call counts, keeping
/// fronthaul queues in lockstep with the engine-scheduled failure and
/// recovery events when scenarios compose both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Fault parameters shared by every cell's link.
    pub config: FaultConfig,
    /// Base RNG seed; cell `c` draws from stream `seed + c`.
    pub seed: u64,
}

impl PoolConfig {
    /// Evaluation defaults for a pool serving ~tens of cells.
    pub fn default_eval(servers: usize) -> Self {
        PoolConfig {
            servers,
            server_capacity_gops: 400.0,
            // 4 × 100 GOPS: a cell-subframe task is atomic in this model,
            // so one core must clear a full-load uplink subframe (~160
            // GOPS·ms) within the 2 ms budget — cores must be ≥ 80 GOPS.
            cores_per_server: 4,
            scheduler: Policy::GlobalEdf,
            parallel: None,
            epoch_steps: 10,
            ttis_per_step: 4,
            headroom: 1.1,
            detection_delay: Duration::from_millis(20),
            replan_overhead: Duration::from_millis(5),
            migration_time_per_cell: Duration::from_millis(25),
            bandwidth: Bandwidth::Mhz20,
            antennas: AntennaConfig::pran_default(),
            mcs: Mcs::new(20),
            fronthaul: None,
            slo: None,
            warm: None,
        }
    }

    /// Structural validation of the knobs that would otherwise surface as
    /// divide-by-zero, empty-histogram or deep-in-the-run panics:
    /// zero counts, non-finite or non-positive capacities and headroom,
    /// and nonsensical parallel-executor shapes.
    pub fn validate(&self) -> Result<(), PoolConfigError> {
        if self.servers == 0 {
            return Err(PoolConfigError::NoServers);
        }
        if self.cores_per_server == 0 {
            return Err(PoolConfigError::NoCores);
        }
        if !self.server_capacity_gops.is_finite() || self.server_capacity_gops <= 0.0 {
            return Err(PoolConfigError::BadCapacity(self.server_capacity_gops));
        }
        if self.epoch_steps == 0 {
            return Err(PoolConfigError::NoEpochSteps);
        }
        if self.ttis_per_step == 0 {
            return Err(PoolConfigError::NoTtisPerStep);
        }
        if !self.headroom.is_finite() || self.headroom <= 0.0 {
            return Err(PoolConfigError::BadHeadroom(self.headroom));
        }
        if let Some(p) = &self.parallel {
            if p.cores == 0 {
                return Err(PoolConfigError::ParallelNoCores);
            }
            if p.batch == 0 {
                return Err(PoolConfigError::ParallelNoBatch);
            }
        }
        if let Some(w) = &self.warm {
            if w.validate().is_err() {
                return Err(PoolConfigError::BadWarmBand(w.band));
            }
        }
        Ok(())
    }
}

/// Why a [`PoolConfig`] (or the trace paired with it) cannot drive a
/// simulation. Returned by [`PoolSimulator::try_new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoolConfigError {
    /// `servers == 0`: nothing to place on.
    NoServers,
    /// The trace has no cells, so the run would produce empty histograms.
    NoCells,
    /// `cores_per_server == 0`: per-core GOPS would divide by zero.
    NoCores,
    /// Server capacity is non-finite or not positive.
    BadCapacity(f64),
    /// `epoch_steps == 0`: the epoch grid is undefined.
    NoEpochSteps,
    /// `ttis_per_step == 0`: no tasks would ever be generated.
    NoTtisPerStep,
    /// Headroom multiplier is non-finite or not positive.
    BadHeadroom(f64),
    /// Parallel executor configured with zero cores.
    ParallelNoCores,
    /// Parallel executor configured with a zero batch size.
    ParallelNoBatch,
    /// Warm-start hysteresis band is negative, NaN or infinite.
    BadWarmBand(f64),
}

impl std::fmt::Display for PoolConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolConfigError::NoServers => write!(f, "pool needs at least one server"),
            PoolConfigError::NoCells => write!(f, "trace has no cells"),
            PoolConfigError::NoCores => write!(f, "servers need at least one core"),
            PoolConfigError::BadCapacity(c) => {
                write!(f, "server capacity {c} GOPS must be finite and positive")
            }
            PoolConfigError::NoEpochSteps => write!(f, "epoch_steps must be at least 1"),
            PoolConfigError::NoTtisPerStep => write!(f, "ttis_per_step must be at least 1"),
            PoolConfigError::BadHeadroom(h) => {
                write!(f, "headroom {h} must be finite and positive")
            }
            // Phrasing matches `ParallelConfig::validate`'s panics, which
            // existing tests match on.
            PoolConfigError::ParallelNoCores => write!(f, "need at least one core"),
            PoolConfigError::ParallelNoBatch => write!(f, "batch must be at least 1"),
            PoolConfigError::BadWarmBand(b) => {
                write!(f, "warm-start hysteresis band {b} must be finite and ≥ 0")
            }
        }
    }
}

impl std::error::Error for PoolConfigError {}

/// A scheduled server failure (and optional recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureSpec {
    /// Which server fails.
    pub server: usize,
    /// When the server dies, relative to trace start.
    pub at: Duration,
    /// How long until it returns (`None` = never).
    pub recover_after: Option<Duration>,
}

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    EpochStart(usize),
    ServerFail(usize, Option<Duration>),
    ServerRecover(usize),
}

/// One recorded failover.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailoverRecord {
    /// The failed server.
    pub server: usize,
    /// Cells displaced by the failure.
    pub displaced: usize,
    /// Cells successfully re-placed immediately.
    pub replaced: usize,
    /// Outage experienced by each re-placed cell.
    pub outage: Duration,
}

/// The simulator.
pub struct PoolSimulator {
    trace: Trace,
    config: PoolConfig,
    failures: Vec<FailureSpec>,
    model: ComputeModel,
}

/// Run-scoped scratch for the epoch hot path.
///
/// One instance lives for a whole [`PoolSimulator::run`]; every trace
/// step reuses its buffers instead of reallocating per-server task
/// vectors and scheduler state (the seed path's dominant cost at metro
/// scale). Task times live as flat `u64` nanosecond columns
/// ([`TaskBatch`]), so the per-task steady state performs zero heap
/// allocations — `tests/tests/zero_alloc.rs` pins this with a counting
/// allocator, and `tests/tests/pool_differential.rs` pins byte-identical
/// reports against [`PoolSimulator::run_reference`].
pub(crate) struct HotBuffers {
    /// Per-server SoA task queues, cleared (capacity kept) every step.
    batches: Vec<TaskBatch>,
    /// Analytic-scheduler scratch: admission order and dispatch heaps.
    scratch: SimScratch,
    /// Analytic-scheduler output columns.
    outcome: BatchOutcome,
    /// Parallel executor built once per run (`parallel` configs only).
    executor: Option<ParallelExecutor>,
    /// Materialization buffer feeding [`ParallelExecutor::execute_into`].
    par_tasks: Vec<RtTask>,
    /// Reusable parallel outcome (records + busy columns).
    par_out: ParallelOutcome,
    /// Release offset of TTI `t` within a step, nanoseconds.
    tti_release_ns: Vec<u64>,
    /// Deadline offset of TTI `t` within a step, nanoseconds.
    tti_deadline_ns: Vec<u64>,
    /// Service time by PRB count. `cell_gops` depends on utilization only
    /// through `round(prbs × util)` ([`CellWorkload::at_utilization`]), so
    /// the whole compute-model walk plus the `Duration` conversion
    /// collapses into one table lookup per cell-step. Entry `p` is built
    /// with the exact reference expression, so results stay bit-equal.
    service_ns_by_prb: Vec<u64>,
    /// `f64::from(bandwidth.prbs())`, the `at_utilization` scale factor.
    prbs_f: f64,
}

impl HotBuffers {
    pub(crate) fn new(cfg: &PoolConfig, model: &ComputeModel) -> Self {
        let core_gops = cfg.server_capacity_gops / cfg.cores_per_server as f64;
        HotBuffers {
            batches: (0..cfg.servers).map(|_| TaskBatch::new()).collect(),
            scratch: SimScratch::new(),
            outcome: BatchOutcome::new(),
            executor: cfg.parallel.map(ParallelExecutor::new),
            par_tasks: Vec::new(),
            par_out: ParallelOutcome {
                tasks: Vec::new(),
                core_busy: Vec::new(),
                makespan: Duration::ZERO,
                steals: 0,
            },
            tti_release_ns: (0..cfg.ttis_per_step)
                .map(|t| (TTI * t as u32).as_nanos() as u64)
                .collect(),
            tti_deadline_ns: (0..cfg.ttis_per_step)
                .map(|t| (TTI * t as u32 + COMPUTE_DEADLINE).as_nanos() as u64)
                .collect(),
            service_ns_by_prb: (0..=cfg.bandwidth.prbs())
                .map(|prbs_used| {
                    let w = CellWorkload {
                        bandwidth: cfg.bandwidth,
                        antennas: cfg.antennas,
                        prbs_used,
                        mcs: cfg.mcs,
                        direction: Direction::Uplink,
                    };
                    Duration::from_secs_f64(model.cell_gops(&w) * 1e-3 / core_gops).as_nanos()
                        as u64
                })
                .collect(),
            prbs_f: f64::from(cfg.bandwidth.prbs()),
        }
    }
}

/// Full output of a run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimReport {
    /// Aggregate counters and histograms.
    pub metrics: PoolMetrics,
    /// One record per handled server failure.
    pub failovers: Vec<FailoverRecord>,
    /// SLO alerts raised by the per-epoch monitor (empty unless
    /// [`PoolConfig::slo`] is set).
    pub alerts: Vec<Alert>,
}

impl PoolSimulator {
    /// Build a simulator over a trace, rejecting configurations that
    /// would otherwise panic mid-run (zero servers/cells/cores, zero
    /// epoch or TTI counts, non-positive capacity or headroom) with a
    /// typed [`PoolConfigError`].
    pub fn try_new(trace: Trace, config: PoolConfig) -> Result<Self, PoolConfigError> {
        config.validate()?;
        if trace.num_cells() == 0 {
            return Err(PoolConfigError::NoCells);
        }
        Ok(PoolSimulator {
            trace,
            config,
            failures: Vec::new(),
            model: ComputeModel::calibrated(),
        })
    }

    /// Build a simulator over a trace.
    ///
    /// # Panics
    /// Panics when the configuration is invalid; see
    /// [`PoolSimulator::try_new`] for the checked variant.
    pub fn new(trace: Trace, config: PoolConfig) -> Self {
        match Self::try_new(trace, config) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Schedule a server failure.
    pub fn inject_failure(&mut self, spec: FailureSpec) {
        assert!(spec.server < self.config.servers, "no such server");
        self.failures.push(spec);
    }

    /// Uplink GOPS for one cell at a PRB utilization.
    fn cell_gops(&self, utilization: f64) -> f64 {
        let w = CellWorkload {
            bandwidth: self.config.bandwidth,
            antennas: self.config.antennas,
            prbs_used: 0,
            mcs: self.config.mcs,
            direction: Direction::Uplink,
        }
        .at_utilization(utilization);
        self.model.cell_gops(&w)
    }

    /// Run to completion (zero-allocation epoch hot path).
    pub fn run(&mut self) -> SimReport {
        self.run_impl(false)
    }

    /// Run to completion through the seed-faithful allocating epoch path.
    ///
    /// Same event loop, same outputs: this keeps the original
    /// per-step-allocating, `Duration`-typed epoch simulation alive as the
    /// differential oracle for [`PoolSimulator::run`] — the two must
    /// produce byte-identical [`SimReport`]s on any configuration whose
    /// executor is deterministic (everything except `steal: true`).
    pub fn run_reference(&mut self) -> SimReport {
        self.run_impl(true)
    }

    fn run_impl(&mut self, reference: bool) -> SimReport {
        let cfg = &self.config;
        let num_cells = self.trace.num_cells();
        let step_seconds = self.trace.step_seconds;
        let total_steps = self.trace.num_steps();
        let num_epochs = total_steps.div_ceil(cfg.epoch_steps);

        let mut engine: Engine<Event> = Engine::new();
        for e in 0..num_epochs {
            let at = Duration::from_secs_f64(e as f64 * cfg.epoch_steps as f64 * step_seconds);
            engine.schedule(SimTime::from_duration(at), Event::EpochStart(e));
        }
        for f in &self.failures {
            engine.schedule(
                SimTime::from_duration(f.at),
                Event::ServerFail(f.server, f.recover_after),
            );
        }

        let mut alive = vec![true; cfg.servers];
        let mut placement = Placement::empty(num_cells);
        let mut warm_placer = cfg.warm.map(WarmPlacer::new);
        let mut metrics = PoolMetrics::default();
        let mut failovers = Vec::new();
        let mut slo_monitor = cfg.slo.map(SloMonitor::new);
        let mut links: Vec<FaultInjector> = match &cfg.fronthaul {
            Some(lf) => (0..num_cells)
                .map(|c| FaultInjector::new(lf.config, lf.seed.wrapping_add(c as u64)))
                .collect(),
            None => Vec::new(),
        };
        // The executor model's core count wins when both are configured:
        // service times must reflect the machine that actually runs them.
        let cores = cfg.parallel.map_or(cfg.cores_per_server, |p| p.cores);
        let core_gops = cfg.server_capacity_gops / cores as f64;
        let mut hot = (!reference).then(|| HotBuffers::new(cfg, &self.model));

        // Epoch-demand twin of the hot path's service table: `cell_gops`
        // varies only with `round(prbs × util)`, so one compute-model walk
        // per PRB count serves every (epoch × cell) prediction. Shared by
        // the reference path too — the table entries are the exact same
        // f64s `cell_gops` returns, so both paths' outputs are unchanged.
        let gops_by_prb = gops_by_prb_table(cfg, &self.model);
        let prbs_f = f64::from(cfg.bandwidth.prbs());

        while let Some((now, event)) = engine.next() {
            let now_us = now.to_duration().as_micros() as u64;
            match event {
                Event::EpochStart(e) => {
                    let first = e * cfg.epoch_steps;
                    let last = ((e + 1) * cfg.epoch_steps).min(total_steps);

                    // Predict demand: epoch-peak utilization with headroom
                    // (an oracle-with-margin predictor; pran-sched::predict
                    // provides online alternatives benched separately).
                    let demands: Vec<CellDemand> = (0..num_cells)
                        .map(|c| {
                            let peak = (first..last)
                                .map(|t| self.trace.samples[t][c])
                                .fold(0.0f64, f64::max);
                            CellDemand {
                                id: c,
                                gops: gops_by_prb[(prbs_f * peak.clamp(0.0, 1.0)).round() as usize]
                                    * cfg.headroom,
                            }
                        })
                        .collect();
                    let instance = PlacementInstance {
                        cells: demands,
                        servers: (0..cfg.servers)
                            .map(|id| ServerSpec {
                                id,
                                capacity_gops: cfg.server_capacity_gops,
                                cost: 1.0,
                            })
                            .collect(),
                        // One shared liveness mask — not a per-cell matrix
                        // of `alive` clones (O(cells × servers) churn).
                        allowed: Allowed::Uniform(alive.clone()),
                    };
                    let (new_placement, plan, dirty) = match warm_placer.as_mut() {
                        Some(w) => {
                            let (p, plan, stats) = w.epoch(&instance);
                            (p, plan, stats.dirty)
                        }
                        None => {
                            let (p, plan) = incremental_repack(&instance, &placement);
                            // The cold path re-considers every cell.
                            (p, plan, num_cells)
                        }
                    };
                    let servers_used = instance.servers_used(&new_placement);
                    let demand_gops = instance.total_gops();
                    metrics.migrations += plan.len() as u64;
                    metrics.epochs += 1;
                    metrics.servers_used.push(servers_used);
                    metrics.demand_gops.push(demand_gops);
                    placement = new_placement;
                    pran_telemetry::trace::sim_event(
                        "pool.epoch",
                        now_us,
                        &[
                            ("epoch", (e as u64).into()),
                            ("migrations", plan.len().into()),
                            ("servers_used", servers_used.into()),
                            ("demand_gops", demand_gops.into()),
                            ("dirty", dirty.into()),
                        ],
                    );

                    // Simulate sampled TTIs of every step in the epoch.
                    match hot.as_mut() {
                        Some(hot) => self.simulate_epoch_hot(
                            first,
                            last,
                            &placement,
                            &alive,
                            &mut links,
                            &mut metrics,
                            hot,
                        ),
                        None => self.simulate_epoch_reference(
                            first,
                            last,
                            &placement,
                            &alive,
                            core_gops,
                            &mut links,
                            &mut metrics,
                        ),
                    }

                    // Per-epoch health observation: publish gauges for
                    // scrapers and feed the online SLO monitor. Miss
                    // ratio and lost reports are cumulative over the run.
                    let alive_capacity =
                        alive.iter().filter(|a| **a).count() as f64 * cfg.server_capacity_gops;
                    let utilization = (alive_capacity > 0.0).then(|| demand_gops / alive_capacity);
                    let outage_p99 = metrics.outages.try_quantile(0.99);
                    if pran_telemetry::enabled() {
                        let registry = pran_telemetry::metrics::global();
                        // Under a metro run each shard publishes its own
                        // gauge series; without the label concurrent
                        // shards would race on one last-writer-wins slot.
                        let shard = pran_telemetry::trace::current_shard().map(|s| s.to_string());
                        let shard_labels;
                        let labels: &[(&str, &str)] = match &shard {
                            Some(s) => {
                                shard_labels = [("shard", s.as_str())];
                                &shard_labels
                            }
                            None => &[],
                        };
                        registry.gauge("pool.miss_ratio", labels, metrics.miss_ratio());
                        if let Some(u) = utilization {
                            registry.gauge("pool.utilization", labels, u);
                        }
                        registry.gauge("pool.reports_lost", labels, metrics.reports_lost as f64);
                        if let Some(p99) = outage_p99 {
                            registry.gauge("pool.outage_p99_us", labels, p99.as_micros() as f64);
                        }
                    }
                    if let Some(monitor) = slo_monitor.as_mut() {
                        monitor.observe_epoch(&EpochSample {
                            epoch: e as u64,
                            at_us: now_us,
                            miss_ratio: Some(metrics.miss_ratio()),
                            utilization,
                            outage_p99,
                            reports_lost: Some(metrics.reports_lost),
                            unplaced: None,
                        });
                    }
                }
                Event::ServerFail(s, recover_after) => {
                    if !alive[s] {
                        continue;
                    }
                    alive[s] = false;
                    // Displace and immediately repack the survivors.
                    let displaced: Vec<usize> = placement
                        .assignment
                        .iter()
                        .enumerate()
                        .filter_map(|(c, a)| (*a == Some(s)).then_some(c))
                        .collect();
                    for c in &displaced {
                        placement.assignment[*c] = None;
                    }
                    // Rebuild a placement instance at current loads.
                    let step = ((engine.now().to_duration().as_secs_f64() / step_seconds) as usize)
                        .min(total_steps - 1);
                    let demands: Vec<CellDemand> = (0..num_cells)
                        .map(|c| CellDemand {
                            id: c,
                            gops: self.cell_gops(self.trace.samples[step][c]) * cfg.headroom,
                        })
                        .collect();
                    let instance = PlacementInstance {
                        cells: demands,
                        servers: (0..cfg.servers)
                            .map(|id| ServerSpec {
                                id,
                                capacity_gops: cfg.server_capacity_gops,
                                cost: 1.0,
                            })
                            .collect(),
                        allowed: Allowed::Uniform(alive.clone()),
                    };
                    let (new_placement, plan) = match warm_placer.as_mut() {
                        Some(w) => {
                            let (p, plan, _) = w.epoch(&instance);
                            (p, plan)
                        }
                        None => incremental_repack(&instance, &placement),
                    };
                    metrics.migrations += plan.len() as u64;
                    let replaced = displaced
                        .iter()
                        .filter(|&&c| new_placement.assignment[c].is_some())
                        .count();
                    let outage =
                        cfg.detection_delay + cfg.replan_overhead + cfg.migration_time_per_cell;
                    for _ in 0..replaced {
                        metrics.outages.record(outage);
                    }
                    // Cells the repack could not re-place stay dark until
                    // the next epoch re-solves placement; their outage is
                    // the failover price plus that wait. Without these
                    // samples the outage histogram — and the online SLO
                    // monitor reading it — is blind to exactly the
                    // failures that hurt most.
                    let stranded = displaced.len() - replaced;
                    if stranded > 0 {
                        let now_d = engine.now().to_duration();
                        let epoch_len =
                            Duration::from_secs_f64(cfg.epoch_steps as f64 * step_seconds);
                        let next_epoch = {
                            let k = (now_d.as_nanos() / epoch_len.as_nanos() + 1) as u32;
                            epoch_len.saturating_mul(k)
                        };
                        let stranded_outage = outage + next_epoch.saturating_sub(now_d);
                        for _ in 0..stranded {
                            metrics.outages.record(stranded_outage);
                        }
                    }
                    failovers.push(FailoverRecord {
                        server: s,
                        displaced: displaced.len(),
                        replaced,
                        outage,
                    });
                    placement = new_placement;
                    pran_telemetry::trace::sim_event(
                        "pool.fail",
                        now_us,
                        &[
                            ("server", s.into()),
                            ("displaced", displaced.len().into()),
                            ("replaced", replaced.into()),
                            ("outage_us", (outage.as_micros() as u64).into()),
                        ],
                    );
                    if let Some(delay) = recover_after {
                        engine.schedule_in(delay, Event::ServerRecover(s));
                    }
                }
                Event::ServerRecover(s) => {
                    alive[s] = true;
                    pran_telemetry::trace::sim_event(
                        "pool.recover",
                        now_us,
                        &[("server", s.into())],
                    );
                }
            }
        }

        let alerts = match slo_monitor.as_mut() {
            Some(monitor) => monitor.take_alerts(),
            None => Vec::new(),
        };
        SimReport {
            metrics,
            failovers,
            alerts,
        }
    }

    /// Simulate the sampled TTIs of `[first, last)` trace steps under the
    /// current placement — the seed-faithful allocating path kept as the
    /// differential oracle (see [`PoolSimulator::run_reference`]).
    #[allow(clippy::too_many_arguments)]
    fn simulate_epoch_reference(
        &self,
        first: usize,
        last: usize,
        placement: &Placement,
        alive: &[bool],
        core_gops: f64,
        links: &mut [FaultInjector],
        metrics: &mut PoolMetrics,
    ) {
        let cfg = &self.config;
        for step in first..last {
            let row = &self.trace.samples[step];
            let step_start = Duration::from_secs_f64(step as f64 * self.trace.step_seconds);
            // Tasks lost: cells unplaced or on a dead server.
            // Group tasks per server.
            let mut per_server: Vec<Vec<RtTask>> = vec![Vec::new(); cfg.servers];
            let mut next_id = vec![0usize; cfg.servers];
            for (cell, &util) in row.iter().enumerate() {
                let service = Duration::from_secs_f64(self.cell_gops(util) * 1e-3 / core_gops);
                for tti in 0..cfg.ttis_per_step {
                    metrics.tasks_total += 1;
                    match placement.assignment[cell] {
                        Some(s) if alive[s] => {
                            let base = TTI * tti as u32;
                            let mut release = base;
                            if !links.is_empty() {
                                // The subframe report crosses the cell's
                                // fronthaul link first; its bucket refills
                                // on absolute simulated time.
                                let link = &mut links[cell];
                                link.advance_to(step_start + base);
                                match link.offer(Bytes::from_static(&[0u8; 32])) {
                                    Outcome::Delivered { extra_delay, .. } => {
                                        // Jitter delays arrival but the HARQ
                                        // deadline stays pinned to the TTI,
                                        // so jitter eats compute slack.
                                        release += extra_delay;
                                    }
                                    Outcome::Dropped | Outcome::RateLimited => {
                                        metrics.tasks_lost += 1;
                                        metrics.reports_lost += 1;
                                        continue;
                                    }
                                }
                            }
                            let id = next_id[s];
                            next_id[s] += 1;
                            per_server[s].push(RtTask {
                                id,
                                cell,
                                release,
                                deadline: base + COMPUTE_DEADLINE,
                                service,
                            });
                        }
                        _ => metrics.tasks_lost += 1,
                    }
                }
            }
            for (s, tasks) in per_server.iter().enumerate() {
                if tasks.is_empty() || !alive[s] {
                    continue;
                }
                match &cfg.parallel {
                    Some(p) => {
                        let out = ParallelExecutor::new(*p).execute(tasks);
                        metrics.deadline_misses += out.misses() as u64;
                        metrics.steals += out.steals;
                        for r in &out.tasks {
                            metrics
                                .response_times
                                .record(r.finish.saturating_sub(tasks[r.id].release));
                            if r.slack_us >= 0 {
                                metrics
                                    .deadline_slack
                                    .record(Duration::from_micros(r.slack_us as u64));
                            }
                        }
                    }
                    None => {
                        let out = simulate(tasks, cfg.cores_per_server, cfg.scheduler);
                        metrics.deadline_misses += out.misses() as u64;
                        for t in tasks {
                            metrics
                                .response_times
                                .record(out.finish[t.id].saturating_sub(t.release));
                            // On-time tasks contribute their remaining
                            // budget — previously only the parallel branch
                            // recorded slack, leaving the histogram
                            // silently empty under the analytic model.
                            if !out.missed[t.id] {
                                metrics.deadline_slack.record(t.deadline - out.finish[t.id]);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The zero-allocation twin of
    /// [`simulate_epoch_reference`](Self::simulate_epoch_reference):
    /// identical simulation, but per-server task queues live as reusable
    /// struct-of-arrays nanosecond columns in [`HotBuffers`], the
    /// analytic scheduler runs through
    /// [`simulate_into`] on reusable heaps, and the parallel executor is
    /// the run-scoped one. All arithmetic is `u64` nanoseconds, exact and
    /// isomorphic to the reference's `Duration` math, so reports are
    /// byte-identical.
    #[allow(clippy::too_many_arguments)]
    fn simulate_epoch_hot(
        &self,
        first: usize,
        last: usize,
        placement: &Placement,
        alive: &[bool],
        links: &mut [FaultInjector],
        metrics: &mut PoolMetrics,
        hot: &mut HotBuffers,
    ) {
        simulate_steps_hot(
            &self.config,
            &self.trace.samples[first..last],
            first,
            self.trace.step_seconds,
            placement,
            alive,
            links,
            metrics,
            hot,
        );
    }
}

/// Predicted uplink GOPS indexed by PRB count. `cell_gops` depends on
/// utilization only through `round(prbs × util)`, so one compute-model
/// walk per PRB count serves every (epoch × cell) demand prediction —
/// table entries are the exact f64s `PoolSimulator::cell_gops` returns.
pub(crate) fn gops_by_prb_table(cfg: &PoolConfig, model: &ComputeModel) -> Vec<f64> {
    (0..=cfg.bandwidth.prbs())
        .map(|prbs_used| {
            model.cell_gops(&CellWorkload {
                bandwidth: cfg.bandwidth,
                antennas: cfg.antennas,
                prbs_used,
                mcs: cfg.mcs,
                direction: Direction::Uplink,
            })
        })
        .collect()
}

/// The step engine under every hot epoch: simulate the sampled TTIs of
/// `rows` (consecutive trace steps starting at absolute index
/// `first_step`) against a fixed placement, accumulating into `metrics`.
/// Shared verbatim by [`PoolSimulator::run`]'s epoch arm and the
/// resident service's incremental epochs, so the two cannot drift.
///
/// Returns the peak per-server task backlog observed (the largest
/// single-server batch filled by any step) — the resident service's
/// flight recorder exposes it as `peak_queue_depth`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_steps_hot(
    cfg: &PoolConfig,
    rows: &[Vec<f64>],
    first_step: usize,
    step_seconds: f64,
    placement: &Placement,
    alive: &[bool],
    links: &mut [FaultInjector],
    metrics: &mut PoolMetrics,
    hot: &mut HotBuffers,
) -> u64 {
    let ttis = cfg.ttis_per_step;
    let HotBuffers {
        batches,
        scratch,
        outcome,
        executor,
        par_tasks,
        par_out,
        tti_release_ns,
        tti_deadline_ns,
        service_ns_by_prb,
        prbs_f,
    } = hot;
    let prbs_f = *prbs_f;
    let mut peak_depth = 0u64;
    for (offset, row) in rows.iter().enumerate() {
        let step = first_step + offset;
        for b in batches.iter_mut() {
            b.clear();
        }
        if links.is_empty() {
            // Ideal-fronthaul fast path: releases are the fixed TTI
            // grid, so the per-cell work is one compute-model call
            // and `ttis` four-column pushes.
            metrics.tasks_total += (row.len() * ttis) as u64;
            for (cell, &util) in row.iter().enumerate() {
                match placement.assignment[cell] {
                    Some(s) if alive[s] => {
                        let service_ns =
                            service_ns_by_prb[(prbs_f * util.clamp(0.0, 1.0)).round() as usize];
                        batches[s].push_run(
                            cell as u32,
                            tti_release_ns,
                            tti_deadline_ns,
                            service_ns,
                        );
                    }
                    _ => metrics.tasks_lost += ttis as u64,
                }
            }
        } else {
            let step_start = Duration::from_secs_f64(step as f64 * step_seconds);
            for (cell, &util) in row.iter().enumerate() {
                match placement.assignment[cell] {
                    Some(s) if alive[s] => {
                        let service_ns =
                            service_ns_by_prb[(prbs_f * util.clamp(0.0, 1.0)).round() as usize];
                        let batch = &mut batches[s];
                        for tti in 0..ttis {
                            metrics.tasks_total += 1;
                            // The subframe report crosses the cell's
                            // fronthaul link first; its bucket refills
                            // on absolute simulated time.
                            let base = TTI * tti as u32;
                            let link = &mut links[cell];
                            link.advance_to(step_start + base);
                            match link.offer(Bytes::from_static(&[0u8; 32])) {
                                Outcome::Delivered { extra_delay, .. } => {
                                    // Jitter delays arrival but the HARQ
                                    // deadline stays pinned to the TTI,
                                    // so jitter eats compute slack.
                                    batch.push(
                                        cell as u32,
                                        tti_release_ns[tti] + extra_delay.as_nanos() as u64,
                                        tti_deadline_ns[tti],
                                        service_ns,
                                    );
                                }
                                Outcome::Dropped | Outcome::RateLimited => {
                                    metrics.tasks_lost += 1;
                                    metrics.reports_lost += 1;
                                }
                            }
                        }
                    }
                    _ => {
                        metrics.tasks_total += ttis as u64;
                        metrics.tasks_lost += ttis as u64;
                    }
                }
            }
        }
        for (s, batch) in batches.iter().enumerate() {
            peak_depth = peak_depth.max(batch.len() as u64);
            if batch.is_empty() || !alive[s] {
                continue;
            }
            match executor.as_ref() {
                Some(ex) => {
                    // The executor consumes array-of-structs tasks;
                    // materialize into the run-scoped buffer.
                    par_tasks.clear();
                    for i in 0..batch.len() {
                        par_tasks.push(RtTask {
                            id: i,
                            cell: batch.cell[i] as usize,
                            release: Duration::from_nanos(batch.release_ns[i]),
                            deadline: Duration::from_nanos(batch.deadline_ns[i]),
                            service: Duration::from_nanos(batch.service_ns[i]),
                        });
                    }
                    ex.execute_into(par_tasks, par_out);
                    metrics.deadline_misses += par_out.misses() as u64;
                    metrics.steals += par_out.steals;
                    for r in &par_out.tasks {
                        metrics
                            .response_times
                            .record(r.finish.saturating_sub(par_tasks[r.id].release));
                        if r.slack_us >= 0 {
                            metrics
                                .deadline_slack
                                .record(Duration::from_micros(r.slack_us as u64));
                        }
                    }
                }
                None => {
                    simulate_into(batch, cfg.cores_per_server, cfg.scheduler, scratch, outcome);
                    metrics.deadline_misses += outcome.misses() as u64;
                    for i in 0..batch.len() {
                        let finish_ns = outcome.finish_ns[i];
                        metrics
                            .response_times
                            .record_us((finish_ns - batch.release_ns[i]) / 1_000);
                        if !outcome.missed[i] {
                            metrics
                                .deadline_slack
                                .record_us((batch.deadline_ns[i] - finish_ns) / 1_000);
                        }
                    }
                }
            }
        }
    }
    peak_depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use pran_traces::{generate, TraceConfig};

    fn small_trace(cells: usize, seed: u64) -> Trace {
        let mut cfg = TraceConfig::default_day(cells, seed);
        cfg.duration_seconds = 2.0 * 3600.0; // 2 h
        cfg.step_seconds = 120.0;
        generate(&cfg)
    }

    fn sim(cells: usize, servers: usize, seed: u64) -> PoolSimulator {
        PoolSimulator::new(small_trace(cells, seed), PoolConfig::default_eval(servers))
    }

    #[test]
    fn healthy_pool_meets_deadlines() {
        let mut s = sim(12, 10, 1);
        let report = s.run();
        assert!(report.metrics.tasks_total > 0);
        assert_eq!(
            report.metrics.tasks_lost, 0,
            "ample pool must place all cells"
        );
        assert!(
            report.metrics.miss_ratio() < 0.01,
            "miss ratio {} in a healthy pool",
            report.metrics.miss_ratio()
        );
        assert!(report.failovers.is_empty());
    }

    #[test]
    fn servers_used_tracks_demand() {
        let mut s = sim(20, 12, 2);
        let report = s.run();
        let m = &report.metrics;
        assert_eq!(m.epochs as usize, m.servers_used.len());
        // Pooled usage must never exceed the pool, and should vary with the
        // diurnal demand (unless demand is flat).
        assert!(m.peak_servers() <= 12);
        assert!(m.mean_servers() >= 1.0);
    }

    #[test]
    fn failure_displaces_and_recovers() {
        let mut s = sim(12, 10, 3);
        s.inject_failure(FailureSpec {
            server: 0,
            at: Duration::from_secs(1800),
            recover_after: Some(Duration::from_secs(600)),
        });
        let report = s.run();
        assert_eq!(report.failovers.len(), 1);
        let f = &report.failovers[0];
        assert_eq!(f.server, 0);
        assert_eq!(
            f.displaced, f.replaced,
            "spare capacity must absorb the failure"
        );
        if f.displaced > 0 {
            // One sample per displaced cell (all replaced here).
            assert_eq!(report.metrics.outages.count(), f.displaced as u64);
            // Outage = detection + replan + migration.
            assert_eq!(f.outage, Duration::from_millis(50));
        }
    }

    #[test]
    fn failure_without_capacity_loses_tasks() {
        // 2 servers, kill one, demand needs both → losses.
        let trace = small_trace(16, 4);
        let mut cfg = PoolConfig::default_eval(2);
        cfg.server_capacity_gops = 600.0;
        let mut s = PoolSimulator::new(trace, cfg);
        s.inject_failure(FailureSpec {
            server: 1,
            at: Duration::from_secs(600),
            recover_after: None,
        });
        let report = s.run();
        assert!(
            report.metrics.tasks_lost > 0,
            "halving an adequate pool must strand some cells"
        );
    }

    #[test]
    fn stranded_cells_record_epoch_wait_outages() {
        // Kill one of two servers with capacity tight enough that the
        // repack cannot re-place every displaced cell. The stranded
        // (displaced-but-unreplaced) cells must show up in the outage
        // histogram: one sample per displaced cell, and the stranded
        // ones carry the wait until the next epoch re-solve on top of
        // the 50ms failover price.
        let trace = small_trace(16, 4);
        let mut cfg = PoolConfig::default_eval(2);
        cfg.server_capacity_gops = 320.0;
        let mut s = PoolSimulator::new(trace, cfg);
        s.inject_failure(FailureSpec {
            server: 1,
            at: Duration::from_secs(600),
            recover_after: None,
        });
        let report = s.run();
        assert_eq!(report.failovers.len(), 1);
        let f = &report.failovers[0];
        assert!(
            f.displaced > f.replaced,
            "displaced {} vs replaced {}: this scenario must leave cells unreplaced",
            f.displaced,
            f.replaced
        );
        assert_eq!(report.metrics.outages.count(), f.displaced as u64);
        let worst = report
            .metrics
            .outages
            .try_quantile(1.0)
            .expect("displaced cells recorded outages");
        assert!(
            worst > Duration::from_millis(50),
            "stranded outage {worst:?} must exceed the bare failover price"
        );
    }

    #[test]
    fn double_failure_of_same_server_ignored() {
        let mut s = sim(8, 6, 5);
        s.inject_failure(FailureSpec {
            server: 1,
            at: Duration::from_secs(60),
            recover_after: None,
        });
        s.inject_failure(FailureSpec {
            server: 1,
            at: Duration::from_secs(120),
            recover_after: None,
        });
        let report = s.run();
        assert_eq!(report.failovers.len(), 1);
    }

    #[test]
    fn migrations_bounded_by_stability() {
        let mut s = sim(15, 10, 6);
        let report = s.run();
        // Incremental repack must not reshuffle everything every epoch.
        let per_epoch = report.metrics.migrations as f64 / report.metrics.epochs as f64;
        assert!(
            per_epoch < 15.0 / 2.0,
            "churn per epoch {per_epoch} too high"
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = |seed| {
            let mut s = sim(10, 8, seed);
            let r = s.run();
            (
                r.metrics.tasks_total,
                r.metrics.deadline_misses,
                r.metrics.migrations,
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic(expected = "no such server")]
    fn failure_validates_server_index() {
        let mut s = sim(4, 2, 8);
        s.inject_failure(FailureSpec {
            server: 5,
            at: Duration::ZERO,
            recover_after: None,
        });
    }

    #[test]
    fn parallel_executor_path_meets_deadlines_and_records_slack() {
        // batch = 1: a batch is the steal/dispatch unit, so batching
        // consecutive TTIs of one cell serializes them on one core —
        // fatal when service (~1.6 ms) exceeds the 1 ms TTI spacing.
        // E6 sweeps that tradeoff; here we want the healthy baseline.
        let mut cfg = PoolConfig::default_eval(10);
        cfg.parallel = Some(ParallelConfig {
            cores: 4,
            batch: 1,
            steal: true,
        });
        let mut s = PoolSimulator::new(small_trace(12, 1), cfg);
        let report = s.run();
        let m = &report.metrics;
        assert!(m.tasks_total > 0);
        assert!(
            m.miss_ratio() < 0.01,
            "parallel pool miss ratio {} in a healthy pool",
            m.miss_ratio()
        );
        // Every on-time task contributes a slack sample.
        assert_eq!(
            m.deadline_slack.count() + m.deadline_misses,
            m.tasks_total - m.tasks_lost,
            "slack samples + misses must cover all executed tasks"
        );
        assert!(m.deadline_slack.mean() > Duration::ZERO);
    }

    #[test]
    fn parallel_path_deterministic_without_stealing() {
        let run = || {
            let mut cfg = PoolConfig::default_eval(8);
            cfg.parallel = Some(ParallelConfig {
                cores: 4,
                batch: 4,
                steal: false,
            });
            let mut s = PoolSimulator::new(small_trace(10, 7), cfg);
            let r = s.run();
            (
                r.metrics.deadline_misses,
                r.metrics.steals,
                r.metrics.deadline_slack.count(),
            )
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.1, 0, "no stealing when disabled");
    }

    #[test]
    fn parallel_cores_override_core_capacity() {
        // With the same pool, an 8-core executor model halves per-core
        // GOPS vs a 4-core one; more cores still schedule fine at this
        // load, and stealing keeps the miss ratio healthy.
        let mut cfg = PoolConfig::default_eval(10);
        cfg.parallel = Some(ParallelConfig {
            cores: 8,
            batch: 4,
            steal: true,
        });
        let mut s = PoolSimulator::new(small_trace(12, 2), cfg);
        let report = s.run();
        assert!(
            report.metrics.miss_ratio() < 0.05,
            "{}",
            report.metrics.miss_ratio()
        );
    }

    #[test]
    fn fronthaul_loss_strands_tasks_deterministically() {
        let run = || {
            let mut cfg = PoolConfig::default_eval(10);
            cfg.fronthaul = Some(LinkFault {
                config: FaultConfig {
                    drop_prob: 0.2,
                    ..FaultConfig::clean()
                },
                seed: 11,
            });
            let mut s = PoolSimulator::new(small_trace(12, 1), cfg);
            let r = s.run();
            (
                r.metrics.tasks_total,
                r.metrics.tasks_lost,
                r.metrics.reports_lost,
            )
        };
        let (total, lost, reports) = run();
        assert!(reports > 0, "20 % drop must lose some reports");
        assert_eq!(lost, reports, "only fronthaul losses in a healthy pool");
        let frac = reports as f64 / total as f64;
        assert!((frac - 0.2).abs() < 0.05, "loss fraction {frac}");
        assert_eq!(run(), (total, lost, reports), "seeded faults replay");
    }

    #[test]
    fn fronthaul_rate_limit_refills_on_sim_time() {
        // The lockstep regression for the composed path: bucket refills
        // must land at simulated-time multiples of refill_interval, so a
        // 1-token bucket refilled every 2 TTIs passes every other TTI of a
        // step regardless of how the epoch loop batches its calls.
        let mut cfg = PoolConfig::default_eval(10);
        cfg.fronthaul = Some(LinkFault {
            config: FaultConfig {
                bucket_capacity: 1,
                refill_per_tick: 1,
                refill_interval: TTI * 2,
                ..FaultConfig::clean()
            },
            seed: 5,
        });
        let mut s = PoolSimulator::new(small_trace(6, 2), cfg);
        let r = s.run();
        let m = &r.metrics;
        // 4 TTIs per step at 1 ms spacing, refill every 2 ms: TTI 0 spends
        // the initial/carried token, TTI 2 the refilled one; TTIs 1 and 3
        // are rate-limited. Exactly half the reports survive.
        assert_eq!(
            m.reports_lost * 2,
            m.tasks_total,
            "time-based refill must pass every other TTI (lost {} of {})",
            m.reports_lost,
            m.tasks_total
        );
    }

    #[test]
    fn fronthaul_jitter_shifts_release_not_deadline() {
        let mut cfg = PoolConfig::default_eval(10);
        cfg.fronthaul = Some(LinkFault {
            config: FaultConfig {
                max_jitter: Duration::from_micros(100),
                ..FaultConfig::clean()
            },
            seed: 9,
        });
        let mut s = PoolSimulator::new(small_trace(12, 3), cfg);
        let r = s.run();
        let m = &r.metrics;
        assert_eq!(m.tasks_lost, 0, "jitter alone loses nothing");
        assert_eq!(m.reports_lost, 0);
        assert!(
            m.miss_ratio() < 0.01,
            "100 µs of jitter fits the 2 ms budget, ratio {}",
            m.miss_ratio()
        );
        assert_eq!(
            m.response_times.count(),
            m.tasks_total,
            "every delivered task still scores a response time"
        );
    }

    #[test]
    fn healthy_pool_with_slo_monitor_stays_quiet() {
        let trace = small_trace(12, 1);
        let mut cfg = PoolConfig::default_eval(10);
        cfg.slo = Some(SloPolicy::default_eval());
        let mut s = PoolSimulator::new(trace, cfg);
        let report = s.run();
        assert!(
            report.alerts.is_empty(),
            "healthy pool raised {:?}",
            report.alerts
        );
    }

    #[test]
    fn starved_pool_raises_miss_ratio_alert() {
        use pran_insight::SloMetric;
        // The capacity-loss scenario: kill one of two servers so tasks
        // are lost; the cumulative miss ratio crosses 1 % and the
        // monitor alerts exactly once (edge-triggered).
        let trace = small_trace(16, 4);
        let mut cfg = PoolConfig::default_eval(2);
        cfg.server_capacity_gops = 600.0;
        cfg.slo = Some(SloPolicy::default_eval());
        let mut s = PoolSimulator::new(trace, cfg);
        s.inject_failure(FailureSpec {
            server: 1,
            at: Duration::from_secs(600),
            recover_after: None,
        });
        let report = s.run();
        assert!(report.metrics.miss_ratio() > 0.01);
        let miss_alerts: Vec<_> = report
            .alerts
            .iter()
            .filter(|a| a.metric == SloMetric::MissRatio)
            .collect();
        assert_eq!(miss_alerts.len(), 1, "alerts: {:?}", report.alerts);
        assert!(miss_alerts[0].value > 0.01);
        assert!((miss_alerts[0].threshold - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn parallel_config_validated_at_construction() {
        let mut cfg = PoolConfig::default_eval(2);
        cfg.parallel = Some(ParallelConfig {
            cores: 0,
            batch: 1,
            steal: true,
        });
        PoolSimulator::new(small_trace(4, 3), cfg);
    }

    #[test]
    fn warm_start_matches_cold_outcomes_on_healthy_pool() {
        let cold = sim(12, 10, 1).run();
        let mut cfg = PoolConfig::default_eval(10);
        cfg.warm = Some(pran_sched::placement::WarmConfig::default_eval());
        let warm = PoolSimulator::new(small_trace(12, 1), cfg).run();
        assert_eq!(warm.metrics.tasks_total, cold.metrics.tasks_total);
        assert_eq!(warm.metrics.tasks_lost, 0, "warm path must place all cells");
        assert!(warm.metrics.miss_ratio() < 0.01);
        // Hysteresis suppresses in-band churn: warm migrations must not
        // exceed the cold path's, which re-decides every cell each epoch.
        assert!(
            warm.metrics.migrations <= cold.metrics.migrations,
            "warm churn {} vs cold {}",
            warm.metrics.migrations,
            cold.metrics.migrations
        );
    }

    #[test]
    fn warm_start_survives_failover() {
        let mut cfg = PoolConfig::default_eval(10);
        cfg.warm = Some(pran_sched::placement::WarmConfig::default_eval());
        let mut s = PoolSimulator::new(small_trace(12, 3), cfg);
        s.inject_failure(FailureSpec {
            server: 0,
            at: Duration::from_secs(1800),
            recover_after: Some(Duration::from_secs(600)),
        });
        let report = s.run();
        assert_eq!(report.failovers.len(), 1);
        let f = &report.failovers[0];
        assert_eq!(f.displaced, f.replaced, "spares must absorb the failure");
    }

    // Satellite: zero counts must surface as typed errors at
    // construction, not divide-by-zero / empty-histogram panics mid-run.

    #[test]
    fn try_new_rejects_zero_servers() {
        let err = PoolSimulator::try_new(small_trace(4, 1), PoolConfig::default_eval(0));
        assert_eq!(err.err(), Some(PoolConfigError::NoServers));
    }

    #[test]
    fn try_new_rejects_empty_trace() {
        let trace = Trace {
            step_seconds: 60.0,
            samples: vec![],
            cells: vec![],
        };
        let err = PoolSimulator::try_new(trace, PoolConfig::default_eval(2));
        assert_eq!(err.err(), Some(PoolConfigError::NoCells));
    }

    #[test]
    fn try_new_rejects_degenerate_counts_and_values() {
        type Case = (Box<dyn Fn(&mut PoolConfig)>, PoolConfigError);
        let cases: Vec<Case> = vec![
            (
                Box::new(|c: &mut PoolConfig| c.cores_per_server = 0),
                PoolConfigError::NoCores,
            ),
            (
                Box::new(|c: &mut PoolConfig| c.epoch_steps = 0),
                PoolConfigError::NoEpochSteps,
            ),
            (
                Box::new(|c: &mut PoolConfig| c.ttis_per_step = 0),
                PoolConfigError::NoTtisPerStep,
            ),
            (
                Box::new(|c: &mut PoolConfig| c.server_capacity_gops = 0.0),
                PoolConfigError::BadCapacity(0.0),
            ),
            (
                Box::new(|c: &mut PoolConfig| c.server_capacity_gops = f64::NAN),
                PoolConfigError::BadCapacity(f64::NAN),
            ),
            (
                Box::new(|c: &mut PoolConfig| c.headroom = 0.0),
                PoolConfigError::BadHeadroom(0.0),
            ),
            (
                Box::new(|c: &mut PoolConfig| {
                    c.parallel = Some(ParallelConfig {
                        cores: 1,
                        batch: 0,
                        steal: false,
                    })
                }),
                PoolConfigError::ParallelNoBatch,
            ),
            (
                Box::new(|c: &mut PoolConfig| {
                    c.warm = Some(pran_sched::placement::WarmConfig { band: -1.0 })
                }),
                PoolConfigError::BadWarmBand(-1.0),
            ),
        ];
        for (mutate, expected) in cases {
            let mut cfg = PoolConfig::default_eval(2);
            mutate(&mut cfg);
            let got = PoolSimulator::try_new(small_trace(4, 1), cfg).err();
            // NaN != NaN, so compare debug strings for the NaN case.
            assert_eq!(
                format!("{got:?}"),
                format!("{:?}", Some(expected)),
                "mutation must be rejected"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn new_panics_on_zero_servers() {
        PoolSimulator::new(small_trace(4, 1), PoolConfig::default_eval(0));
    }
}
