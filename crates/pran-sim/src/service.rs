//! Resident (long-running) metro simulation for soak services.
//!
//! The batch [`MetroSimulator`](crate::MetroSimulator) is run-to-completion:
//! it materializes every shard's whole trace, runs all epochs, and returns
//! one merged report. A *resident* deployment — ROADMAP item 1's live
//! observability plane — needs the opposite shape: epochs processed one at
//! a time against streamed trace generation, with per-epoch metrics
//! published to scrapers while the simulation keeps running indefinitely.
//!
//! [`ResidentMetro`] provides that shape without forking the simulation
//! itself: each shard holds a [`TraceStream`] (bit-exact with the batch
//! generator), the placement loop reuses the exact epoch arm of
//! `PoolSimulator::run` (same demand table, same warm placer, same
//! `simulate_steps_hot` execution engine), and per-epoch metrics
//! accumulate into a cumulative [`PoolMetrics`] that is **byte-identical**
//! to what a batch [`MetroSimulator::run`](crate::MetroSimulator::run)
//! over the same configuration produces — `tests/soak_service.rs` pins
//! this differentially.
//!
//! Per epoch the caller gets an [`EpochStatus`]: a compact, fully
//! deterministic [`EpochRecord`] (what the flight recorder rings), any SLO
//! [`Alert`]s raised, and wall-clock phase timings
//! (ingest / dispatch / execute / merge) for self-profiling.

use std::time::{Duration, Instant};

use pran_fronthaul::fault::FaultInjector;
use pran_insight::slo::{Alert, EpochSample, SloMetric, SloMonitor, SloPolicy};
use pran_phy::compute::ComputeModel;
use pran_sched::placement::migration::incremental_repack;
use pran_sched::placement::warm::WarmPlacer;
use pran_sched::placement::{Allowed, CellDemand, Placement, PlacementInstance, ServerSpec};
use pran_traces::{TraceConfig, TraceStream};
use serde::{Deserialize, Serialize};

use crate::metrics::PoolMetrics;
use crate::metro::{MetroConfig, MetroError};
use crate::pool::{gops_by_prb_table, simulate_steps_hot, HotBuffers, PoolConfig};

/// One epoch's deterministic summary — the flight recorder's ring element.
///
/// Every field is a pure function of the simulation configuration (no
/// wall-clock timings, no host state), so recorder dumps are byte-identical
/// across worker counts and runs; `tests/soak_service.rs` pins 1-worker vs
/// 8-worker dumps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based, monotonically increasing over the soak).
    pub epoch: u64,
    /// Simulated-clock timestamp of the epoch start, microseconds.
    pub at_us: u64,
    /// Subframe tasks generated this epoch (all shards).
    pub tasks: u64,
    /// Deadline misses this epoch.
    pub misses: u64,
    /// Tasks lost this epoch (dead/unplaced servers + fronthaul drops).
    pub lost: u64,
    /// Fronthaul-dropped uplink reports this epoch.
    pub reports_lost: u64,
    /// Epoch-local miss ratio (misses + lost over tasks).
    pub miss_ratio: f64,
    /// Cumulative miss ratio since the soak started.
    pub cum_miss_ratio: f64,
    /// p99 of this epoch's positive deadline slack, microseconds (0 when
    /// no task finished on time — e.g. every task lost).
    pub slack_p99_us: u64,
    /// Peak per-server task backlog in any single step of the epoch.
    pub peak_queue_depth: u64,
    /// Servers the placement actually used (all shards).
    pub servers_used: u64,
    /// Servers alive across the metro.
    pub alive_servers: u64,
    /// Liveness bitmask of the first ≤ 64 servers, shard-major order
    /// (bit *i* set = server *i* alive); wider pools truncate.
    pub alive_mask: u64,
    /// Placed demand over alive capacity (0 when no server is alive).
    pub utilization: f64,
    /// Cells the placement left unserved this epoch.
    pub unplaced: u64,
    /// Bitmask of [`SloMetric`]s that raised an alert this epoch
    /// (bit = position in [`SloMetric::all`]).
    pub alert_mask: u32,
    /// Whether this epoch breached the chaos-aligned safety envelope
    /// (epoch-local miss ratio or unplaced cells past the SLO policy
    /// bounds), independent of the monitor's edge-trigger state.
    pub violation: bool,
}

/// What [`ResidentMetro::step_epoch`] hands back: the deterministic record,
/// the alerts it raised, and the wall-clock self-profile of the epoch.
#[derive(Debug, Clone)]
pub struct EpochStatus {
    /// The deterministic epoch summary (rung into the flight recorder).
    pub record: EpochRecord,
    /// SLO alerts the monitor raised this epoch (edge-triggered).
    pub alerts: Vec<Alert>,
    /// Wall-clock nanoseconds streaming this epoch's trace rows (summed
    /// across shards).
    pub ingest_ns: u64,
    /// Wall-clock nanoseconds predicting demand and (re)placing cells.
    pub dispatch_ns: u64,
    /// Wall-clock nanoseconds executing the per-TTI task simulation.
    pub execute_ns: u64,
    /// Wall-clock nanoseconds merging shard metrics and folding the
    /// cumulative state.
    pub merge_ns: u64,
}

/// Per-epoch deterministic outputs of one shard's step.
#[derive(Debug, Clone, Copy, Default)]
struct ShardDelta {
    peak_queue_depth: u64,
    unplaced: u64,
    ingest_ns: u64,
    dispatch_ns: u64,
    execute_ns: u64,
}

/// One shard of the resident metro: a streamed trace plus the pool epoch
/// state (`PoolSimulator::run`'s locals, lifted into fields so epochs can
/// be stepped one at a time).
struct ResidentShard {
    cfg: PoolConfig,
    stream: TraceStream,
    /// The current epoch's rows (`epoch_steps` buffers, reused).
    rows: Vec<Vec<f64>>,
    hot: HotBuffers,
    gops_by_prb: Vec<f64>,
    prbs_f: f64,
    placement: Placement,
    warm: Option<WarmPlacer>,
    alive: Vec<bool>,
    links: Vec<FaultInjector>,
    /// Epoch-local metrics, reset at the top of every step.
    scratch: PoolMetrics,
    delta: ShardDelta,
}

impl ResidentShard {
    fn new(cfg: PoolConfig, trace_cfg: &TraceConfig) -> Self {
        let model = ComputeModel::calibrated();
        let stream = TraceStream::new(trace_cfg);
        let num_cells = stream.num_cells();
        let rows = (0..cfg.epoch_steps)
            .map(|_| Vec::with_capacity(num_cells))
            .collect();
        let links = match &cfg.fronthaul {
            Some(lf) => (0..num_cells)
                .map(|c| FaultInjector::new(lf.config, lf.seed.wrapping_add(c as u64)))
                .collect(),
            None => Vec::new(),
        };
        let hot = HotBuffers::new(&cfg, &model);
        let gops_by_prb = gops_by_prb_table(&cfg, &model);
        let prbs_f = f64::from(cfg.bandwidth.prbs());
        ResidentShard {
            stream,
            rows,
            hot,
            gops_by_prb,
            prbs_f,
            placement: Placement::empty(num_cells),
            warm: cfg.warm.map(WarmPlacer::new),
            alive: vec![true; cfg.servers],
            links,
            scratch: PoolMetrics::default(),
            delta: ShardDelta::default(),
            cfg,
        }
    }

    /// Step one epoch: stream `epoch_steps` rows, (re)place, execute.
    /// Mirrors `PoolSimulator::run`'s `EpochStart` arm exactly — same
    /// demand table, same warm/cold placement, same hot execution engine.
    fn step_epoch(&mut self) {
        self.scratch.reset();
        let cfg = &self.cfg;
        let num_cells = self.stream.num_cells();

        // Ingest: stream this epoch's utilization rows.
        let t0 = Instant::now();
        let first_step = self.stream.step_index();
        for row in self.rows.iter_mut() {
            self.stream.next_step_into(row);
        }
        let t1 = Instant::now();

        // Dispatch: epoch-peak demand prediction with headroom, then the
        // warm (or cold incremental) placement — as in the batch path.
        let demands: Vec<CellDemand> = (0..num_cells)
            .map(|c| {
                let peak = self.rows.iter().map(|r| r[c]).fold(0.0f64, f64::max);
                CellDemand {
                    id: c,
                    gops: self.gops_by_prb[(self.prbs_f * peak.clamp(0.0, 1.0)).round() as usize]
                        * cfg.headroom,
                }
            })
            .collect();
        let instance = PlacementInstance {
            cells: demands,
            servers: (0..cfg.servers)
                .map(|id| ServerSpec {
                    id,
                    capacity_gops: cfg.server_capacity_gops,
                    cost: 1.0,
                })
                .collect(),
            allowed: Allowed::Uniform(self.alive.clone()),
        };
        let (new_placement, plan) = match self.warm.as_mut() {
            Some(w) => {
                let (p, plan, _stats) = w.epoch(&instance);
                (p, plan)
            }
            None => incremental_repack(&instance, &self.placement),
        };
        self.scratch.migrations += plan.len() as u64;
        self.scratch.epochs = 1;
        self.scratch
            .servers_used
            .push(instance.servers_used(&new_placement));
        self.scratch.demand_gops.push(instance.total_gops());
        self.placement = new_placement;
        self.delta.unplaced = self
            .placement
            .assignment
            .iter()
            .filter(|a| a.is_none())
            .count() as u64;
        let t2 = Instant::now();

        // Execute: the shared hot step engine, accumulating into the
        // epoch-local scratch.
        self.delta.peak_queue_depth = simulate_steps_hot(
            cfg,
            &self.rows,
            first_step,
            self.stream.step_seconds(),
            &self.placement,
            &self.alive,
            &mut self.links,
            &mut self.scratch,
            &mut self.hot,
        );
        let t3 = Instant::now();

        self.delta.ingest_ns = (t1 - t0).as_nanos() as u64;
        self.delta.dispatch_ns = (t2 - t1).as_nanos() as u64;
        self.delta.execute_ns = (t3 - t2).as_nanos() as u64;
    }
}

/// The resident metro simulator: every shard of a [`MetroConfig`] stepped
/// one epoch at a time, with cumulative metrics that match the batch
/// [`MetroSimulator::run`](crate::MetroSimulator::run) byte for byte.
pub struct ResidentMetro {
    config: MetroConfig,
    shards: Vec<ResidentShard>,
    epoch: u64,
    epoch_steps: usize,
    step_seconds: f64,
    /// Cumulative metrics over the whole soak.
    cum: PoolMetrics,
    /// Reused epoch-merge scratch.
    em: PoolMetrics,
    monitor: Option<SloMonitor>,
    /// Safety bounds for the `violation` flag (chaos-aligned).
    policy: SloPolicy,
}

impl ResidentMetro {
    /// Build with the evaluation defaults of
    /// [`MetroSimulator::try_new`](crate::MetroSimulator::try_new): warm
    /// placement, a diurnal day trace per shard, and the online SLO
    /// monitor armed with [`SloPolicy::default_eval`].
    pub fn try_new(config: MetroConfig) -> Result<Self, MetroError> {
        let mut pool = PoolConfig::default_eval(config.servers_per_shard.max(1));
        pool.warm = Some(pran_sched::placement::WarmConfig::default_eval());
        pool.slo = Some(SloPolicy::default_eval());
        let trace = TraceConfig::default_day(config.cells.max(1), config.seed);
        Self::with_pool(config, pool, trace)
    }

    /// Build over an explicit per-shard pool configuration and trace
    /// template, mirroring
    /// [`MetroSimulator::with_pool`](crate::MetroSimulator::with_pool):
    /// the template's `num_cells` and `seed` are overridden per shard
    /// ([`MetroConfig::shard_cells`] / [`MetroConfig::shard_seed`]) and
    /// `fronthaul.seed` is re-derived per shard.
    pub fn with_pool(
        config: MetroConfig,
        pool: PoolConfig,
        trace: TraceConfig,
    ) -> Result<Self, MetroError> {
        config.validate().map_err(MetroError::Metro)?;
        pool.validate().map_err(MetroError::Pool)?;
        let monitor = pool.slo.map(SloMonitor::new);
        let policy = pool.slo.unwrap_or_else(SloPolicy::default_eval);
        let shards = (0..config.shards)
            .map(|s| {
                let mut trace_cfg = trace.clone();
                trace_cfg.num_cells = config.shard_cells(s);
                trace_cfg.seed = config.shard_seed(s);
                let mut pool_cfg = pool.clone();
                if let Some(lf) = pool_cfg.fronthaul.as_mut() {
                    // Per-shard fault streams, as in the batch metro.
                    lf.seed ^= trace_cfg.seed;
                }
                ResidentShard::new(pool_cfg, &trace_cfg)
            })
            .collect();
        Ok(ResidentMetro {
            config,
            epoch: 0,
            epoch_steps: pool.epoch_steps,
            step_seconds: trace.step_seconds,
            shards,
            cum: PoolMetrics::default(),
            em: PoolMetrics::default(),
            monitor,
            policy,
        })
    }

    /// The metro configuration.
    pub fn config(&self) -> MetroConfig {
        self.config
    }

    /// Epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative metrics since the soak started — byte-identical to a
    /// batch metro run over the same number of epochs.
    pub fn cumulative(&self) -> &PoolMetrics {
        &self.cum
    }

    /// Kill the first `n` currently-alive servers of `shard` (a forced
    /// degradation hook for alert/recorder testing: the next epoch's
    /// placement loses their capacity, and displaced demand that no longer
    /// fits turns into lost tasks and unplaced cells). Returns how many
    /// servers were actually killed.
    pub fn kill_servers(&mut self, shard: usize, n: usize) -> usize {
        let mut killed = 0;
        if let Some(sh) = self.shards.get_mut(shard) {
            for a in sh.alive.iter_mut() {
                if killed == n {
                    break;
                }
                if *a {
                    *a = false;
                    killed += 1;
                }
            }
        }
        killed
    }

    /// Revive every server in every shard.
    pub fn revive_all(&mut self) {
        for sh in self.shards.iter_mut() {
            sh.alive.fill(true);
        }
    }

    /// Step every shard one epoch (in parallel across up to
    /// `config.workers` threads), merge in shard-index order, fold the
    /// cumulative state, and feed the SLO monitor.
    pub fn step_epoch(&mut self) -> EpochStatus {
        let workers = self.config.workers.min(self.shards.len()).max(1);
        if workers == 1 {
            for sh in self.shards.iter_mut() {
                sh.step_epoch();
            }
        } else {
            let chunk = self.shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for batch in self.shards.chunks_mut(chunk) {
                    scope.spawn(|| {
                        for sh in batch {
                            sh.step_epoch();
                        }
                    });
                }
            });
        }

        // Merge phase: fold shard scratches in shard-index order (exactly
        // the batch metro's merge discipline), then accumulate the
        // cumulative state manually — `PoolMetrics::merge` treats `epochs`
        // as max and the per-epoch series element-wise, which is the
        // cross-shard semantic, not the across-epochs one.
        let m0 = Instant::now();
        self.em.reset();
        let mut ingest_ns = 0u64;
        let mut dispatch_ns = 0u64;
        let mut execute_ns = 0u64;
        let mut peak_queue_depth = 0u64;
        let mut unplaced = 0u64;
        let mut alive_servers = 0u64;
        let mut alive_mask = 0u64;
        let mut mask_bit = 0u32;
        for sh in &self.shards {
            self.em.merge(&sh.scratch);
            ingest_ns += sh.delta.ingest_ns;
            dispatch_ns += sh.delta.dispatch_ns;
            execute_ns += sh.delta.execute_ns;
            peak_queue_depth = peak_queue_depth.max(sh.delta.peak_queue_depth);
            unplaced += sh.delta.unplaced;
            for &a in &sh.alive {
                if a {
                    alive_servers += 1;
                    if mask_bit < 64 {
                        alive_mask |= 1u64 << mask_bit;
                    }
                }
                mask_bit = mask_bit.saturating_add(1);
            }
        }
        let em = &self.em;
        self.cum.tasks_total += em.tasks_total;
        self.cum.deadline_misses += em.deadline_misses;
        self.cum.tasks_lost += em.tasks_lost;
        self.cum.reports_lost += em.reports_lost;
        self.cum.migrations += em.migrations;
        self.cum.steals += em.steals;
        self.cum.epochs += 1;
        self.cum
            .servers_used
            .push(em.servers_used.first().copied().unwrap_or(0));
        self.cum
            .demand_gops
            .push(em.demand_gops.first().copied().unwrap_or(0.0));
        self.cum.outages.merge(&em.outages);
        self.cum.response_times.merge(&em.response_times);
        self.cum.deadline_slack.merge(&em.deadline_slack);

        let epoch = self.epoch;
        self.epoch += 1;
        let at_us =
            Duration::from_secs_f64(epoch as f64 * self.epoch_steps as f64 * self.step_seconds)
                .as_micros() as u64;
        let demand_gops = em.demand_gops.first().copied().unwrap_or(0.0);
        let alive_capacity = self
            .shards
            .first()
            .map(|sh| sh.cfg.server_capacity_gops)
            .unwrap_or(0.0)
            * alive_servers as f64;
        let utilization = if alive_capacity > 0.0 {
            demand_gops / alive_capacity
        } else {
            0.0
        };
        let slack_p99_us = em
            .deadline_slack
            .try_quantile(0.99)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let record_base = EpochRecord {
            epoch,
            at_us,
            tasks: em.tasks_total,
            misses: em.deadline_misses,
            lost: em.tasks_lost,
            reports_lost: em.reports_lost,
            miss_ratio: em.miss_ratio(),
            cum_miss_ratio: self.cum.miss_ratio(),
            slack_p99_us,
            peak_queue_depth,
            servers_used: em.servers_used.first().copied().unwrap_or(0) as u64,
            alive_servers,
            alive_mask,
            utilization,
            unplaced,
            alert_mask: 0,
            violation: false,
        };
        let merge_ns = m0.elapsed().as_nanos() as u64;

        // Telemetry / SLO phase: feed the monitor an *epoch-local* sample
        // so a resident soak alerts on what just happened, not on the
        // diluted lifetime average.
        let mut alerts = Vec::new();
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.observe_epoch(&EpochSample {
                epoch,
                at_us,
                miss_ratio: Some(record_base.miss_ratio),
                utilization: Some(utilization),
                outage_p99: em.outages.try_quantile(0.99),
                reports_lost: Some(em.reports_lost),
                unplaced: Some(unplaced),
            });
            alerts = monitor.take_alerts();
        }
        let mut alert_mask = 0u32;
        for a in &alerts {
            if let Some(i) = SloMetric::all().iter().position(|m| *m == a.metric) {
                alert_mask |= 1 << i;
            }
        }
        let violation = record_base.miss_ratio > self.policy.miss_ratio_max
            || unplaced > self.policy.unplaced_max;
        let record = EpochRecord {
            alert_mask,
            violation,
            ..record_base
        };

        EpochStatus {
            record,
            alerts,
            ingest_ns,
            dispatch_ns,
            execute_ns,
            merge_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_resident(cells: usize, shards: usize) -> ResidentMetro {
        let mut cfg = MetroConfig::default_eval(cells, shards);
        cfg.seed = 42;
        let mut pool = PoolConfig::default_eval(cfg.servers_per_shard.max(1));
        pool.warm = Some(pran_sched::placement::WarmConfig::default_eval());
        pool.slo = Some(SloPolicy::default_eval());
        let mut trace = TraceConfig::default_day(cells, cfg.seed);
        trace.duration_seconds = 2.0 * 3600.0;
        trace.step_seconds = 120.0;
        ResidentMetro::with_pool(cfg, pool, trace).unwrap()
    }

    #[test]
    fn epochs_advance_and_accumulate() {
        let mut m = small_resident(24, 2);
        let s0 = m.step_epoch();
        assert_eq!(s0.record.epoch, 0);
        assert!(s0.record.tasks > 0);
        let s1 = m.step_epoch();
        assert_eq!(s1.record.epoch, 1);
        assert_eq!(m.epoch(), 2);
        assert_eq!(
            m.cumulative().tasks_total,
            s0.record.tasks + s1.record.tasks
        );
        assert_eq!(m.cumulative().epochs, 2);
        assert_eq!(m.cumulative().servers_used.len(), 2);
    }

    #[test]
    fn records_are_deterministic_across_worker_counts() {
        let mut one = small_resident(24, 2);
        one.config.workers = 1;
        let mut eight = small_resident(24, 2);
        eight.config.workers = 8;
        for _ in 0..5 {
            let a = one.step_epoch().record;
            let b = eight.step_epoch().record;
            assert_eq!(a, b);
        }
        assert_eq!(one.cumulative(), eight.cumulative());
    }

    #[test]
    fn killing_all_servers_forces_losses_and_a_violation() {
        let mut m = small_resident(24, 2);
        let healthy = m.step_epoch();
        assert!(!healthy.record.violation);
        assert_eq!(healthy.record.lost, 0);
        let servers = m.shards[0].cfg.servers;
        assert_eq!(m.kill_servers(0, servers), servers);
        let degraded = m.step_epoch();
        assert!(degraded.record.lost > 0, "dead shard must lose tasks");
        assert!(degraded.record.violation);
        assert!(degraded.record.unplaced > 0);
        assert!(
            degraded.record.alert_mask != 0,
            "the SLO monitor must raise at least one alert"
        );
        assert!(degraded.record.alive_servers < healthy.record.alive_servers);
        m.revive_all();
        let recovered = m.step_epoch();
        assert_eq!(recovered.record.alive_servers, healthy.record.alive_servers);
    }
}
