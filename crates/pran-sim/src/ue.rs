//! Microscopic load model: users, sessions, link geometry → cell load.
//!
//! The macroscopic trace generator (`pran-traces`) draws utilization
//! envelopes directly; this module derives them from first principles —
//! UEs arrive (Poisson, rate modulated by the diurnal profile), each lands
//! at a random position in the cell, the link budget assigns an MCS, the
//! scheduler grants the PRBs its demand needs, sessions hold for an
//! exponential time. Output per step: PRB utilization, traffic-weighted
//! MCS (which the compute model prices), and blocking when the grid is
//! full — so admission pressure emerges from user dynamics instead of
//! being painted on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pran_phy::frame::Bandwidth;
use pran_phy::link::LinkBudget;
use pran_phy::mcs::Mcs;
use pran_traces::arrivals::{exponential, poisson};
use pran_traces::diurnal::{CellClass, DiurnalProfile};
use pran_traces::trace::{CellMeta, Point, Trace};

/// Configuration of the per-cell UE model.
#[derive(Debug, Clone)]
pub struct UeModelConfig {
    /// Cell radius in meters (UEs uniform in the disc).
    pub cell_radius_m: f64,
    /// Radio link parameters.
    pub link: LinkBudget,
    /// Carrier bandwidth (PRB grid).
    pub bandwidth: Bandwidth,
    /// Mean session duration in seconds.
    pub mean_session_s: f64,
    /// Per-UE demand in bit/s.
    pub demand_bps: f64,
    /// Peak UE arrival rate (arrivals/second at profile peak).
    pub peak_arrival_rate: f64,
    /// Step length in seconds.
    pub step_seconds: f64,
    /// Largest fraction of the PRB grid a single guaranteed-rate bearer
    /// may be granted. UEs whose SINR would need more are refused as a
    /// service limit (counted in `blocked_coverage`), not admitted —
    /// the per-bearer share cap every real admission controller
    /// enforces. Without it, one deeply shadowed cell-edge UE can hold
    /// 80%+ of the grid for its whole session and everything arriving
    /// behind it reads as congestion even when the cell is nearly idle.
    pub max_grant_fraction: f64,
}

impl UeModelConfig {
    /// Evaluation defaults: 1 km macro cell, 5 Mb/s per UE, 90 s sessions.
    pub fn default_eval() -> Self {
        UeModelConfig {
            cell_radius_m: 1000.0,
            link: LinkBudget::macro_cell(),
            bandwidth: Bandwidth::Mhz20,
            mean_session_s: 90.0,
            demand_bps: 5e6,
            // ≈0.15/s × 90 s ≈ 13 concurrent UEs × ~10 PRBs at median SINR
            // — the grid saturates right at the profile peak, by design.
            peak_arrival_rate: 0.15,
            step_seconds: 60.0,
            // A cell-edge UE may need up to half the grid; beyond that
            // the bearer is refused as unservable.
            max_grant_fraction: 0.5,
        }
    }
}

/// One active session.
#[derive(Debug, Clone, Copy)]
struct Session {
    prbs: u32,
    mcs: Mcs,
    remaining_s: f64,
}

/// Load of one cell at one step, as produced by the UE model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLoad {
    /// PRB utilization in `[0, 1]`.
    pub utilization: f64,
    /// PRB-weighted mean MCS index (`None` when idle).
    pub mean_mcs: Option<f64>,
    /// Active users after admission.
    pub users: usize,
    /// Users blocked this step (no PRBs or out of coverage).
    pub blocked: usize,
}

/// Per-cell UE dynamics.
#[derive(Debug)]
pub struct UeCell {
    config: UeModelConfig,
    sessions: Vec<Session>,
    /// Cumulative arrivals lost to coverage (no sustainable MCS).
    pub blocked_coverage: u64,
    /// Cumulative arrivals lost to a full PRB grid (congestion).
    pub blocked_capacity: u64,
    /// Cumulative admitted arrivals.
    pub total_admitted: u64,
}

impl UeCell {
    /// Empty cell.
    ///
    /// # Panics
    /// Panics when `step_seconds` exceeds twice the mean session duration:
    /// session aging is step-quantized, so steps much longer than sessions
    /// turn the queue into an uncorrelated fill-the-grid draw and the
    /// diurnal structure disappears.
    pub fn new(config: UeModelConfig) -> Self {
        assert!(config.cell_radius_m > 0.0 && config.step_seconds > 0.0);
        assert!(
            config.max_grant_fraction > 0.0,
            "max_grant_fraction must be positive"
        );
        assert!(
            config.step_seconds <= 2.0 * config.mean_session_s,
            "step ({} s) too coarse for {} s sessions",
            config.step_seconds,
            config.mean_session_s
        );
        UeCell {
            config,
            sessions: Vec::new(),
            blocked_coverage: 0,
            blocked_capacity: 0,
            total_admitted: 0,
        }
    }

    /// Advance one step with the given arrival-rate multiplier in `[0,1]`.
    pub fn step<R: Rng + ?Sized>(&mut self, rate_multiplier: f64, rng: &mut R) -> CellLoad {
        let cfg = &self.config;
        let grid = cfg.bandwidth.prbs();

        // Age out sessions.
        for s in self.sessions.iter_mut() {
            s.remaining_s -= cfg.step_seconds;
        }
        self.sessions.retain(|s| s.remaining_s > 0.0);

        // Arrivals.
        let lambda = cfg.peak_arrival_rate * rate_multiplier.clamp(0.0, 1.0) * cfg.step_seconds;
        let arrivals = poisson(lambda, rng);
        let mut blocked = 0usize;
        for _ in 0..arrivals {
            // Uniform position in the disc.
            let r = cfg.cell_radius_m * rng.gen::<f64>().sqrt();
            let sinr = cfg.link.sinr_db(r, rng);
            let (Some(_mcs), Some(prbs)) = (
                cfg.link.adapt_mcs(sinr),
                cfg.link.required_prbs(cfg.demand_bps, sinr),
            ) else {
                self.blocked_coverage += 1; // out of coverage: deep shadowing
                blocked += 1;
                continue;
            };
            let mcs = cfg.link.adapt_mcs(sinr).expect("checked above");
            let grant_cap = ((f64::from(grid) * cfg.max_grant_fraction) as u32).clamp(1, grid);
            if prbs > grant_cap {
                // This UE's demand at its SINR exceeds the per-bearer
                // share the admission controller will grant: a
                // coverage/service limit, not congestion.
                self.blocked_coverage += 1;
                blocked += 1;
                continue;
            }
            let in_use: u32 = self.sessions.iter().map(|s| s.prbs).sum();
            if in_use + prbs > grid {
                self.blocked_capacity += 1; // admission blocking: grid full
                blocked += 1;
                continue;
            }
            self.sessions.push(Session {
                prbs,
                mcs,
                remaining_s: exponential(cfg.mean_session_s, rng),
            });
            self.total_admitted += 1;
        }

        let in_use: u32 = self.sessions.iter().map(|s| s.prbs).sum();
        let mean_mcs = if in_use > 0 {
            Some(
                self.sessions
                    .iter()
                    .map(|s| f64::from(s.mcs.index()) * f64::from(s.prbs))
                    .sum::<f64>()
                    / f64::from(in_use),
            )
        } else {
            None
        };
        CellLoad {
            utilization: f64::from(in_use) / f64::from(grid),
            mean_mcs,
            users: self.sessions.len(),
            blocked,
        }
    }

    /// Overall blocking probability (coverage + congestion).
    pub fn blocking_probability(&self) -> f64 {
        let blocked = self.blocked_coverage + self.blocked_capacity;
        let offered = self.total_admitted + blocked;
        if offered == 0 {
            0.0
        } else {
            blocked as f64 / offered as f64
        }
    }

    /// Congestion-only blocking probability (grid full), excluding
    /// coverage losses — the quantity admission control can influence.
    pub fn congestion_blocking(&self) -> f64 {
        let offered = self.total_admitted + self.blocked_coverage + self.blocked_capacity;
        if offered == 0 {
            0.0
        } else {
            self.blocked_capacity as f64 / offered as f64
        }
    }
}

/// Synthesize a [`Trace`] from UE dynamics: each cell runs the microscopic
/// model with its class's diurnal profile modulating the arrival rate.
/// Alternative to `pran_traces::generate` when per-user realism matters.
pub fn synthesize_trace(cells: usize, config: &UeModelConfig, duration_s: f64, seed: u64) -> Trace {
    assert!(cells > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let classes = CellClass::all();
    let metas: Vec<CellMeta> = (0..cells)
        .map(|id| CellMeta {
            id,
            class: classes[id % classes.len()],
            position: Point {
                x: rng.gen_range(0.0..10_000.0),
                y: rng.gen_range(0.0..10_000.0),
            },
            peak_utilization: 1.0,
        })
        .collect();
    let profiles: Vec<DiurnalProfile> = metas
        .iter()
        .map(|m| DiurnalProfile::for_class(m.class))
        .collect();
    let mut states: Vec<UeCell> = (0..cells).map(|_| UeCell::new(config.clone())).collect();

    let steps = (duration_s / config.step_seconds).round() as usize;
    let mut samples = Vec::with_capacity(steps);
    for t in 0..steps {
        let hour = (t as f64 * config.step_seconds / 3600.0) % 24.0;
        let row: Vec<f64> = states
            .iter_mut()
            .enumerate()
            .map(|(c, state)| state.step(profiles[c].at(hour), &mut rng).utilization)
            .collect();
        samples.push(row);
    }
    let trace = Trace {
        step_seconds: config.step_seconds,
        cells: metas,
        samples,
    };
    debug_assert!(trace.validate().is_ok());
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn idle_cell_reports_zero() {
        let mut cell = UeCell::new(UeModelConfig::default_eval());
        let mut r = rng(1);
        let load = cell.step(0.0, &mut r);
        assert_eq!(load.utilization, 0.0);
        assert_eq!(load.users, 0);
        assert_eq!(load.mean_mcs, None);
    }

    #[test]
    fn utilization_tracks_arrival_rate() {
        let cfg = UeModelConfig::default_eval();
        let run = |mult: f64| {
            let mut cell = UeCell::new(cfg.clone());
            let mut r = rng(2);
            // Warm up to steady state, then average.
            for _ in 0..20 {
                cell.step(mult, &mut r);
            }
            (0..50)
                .map(|_| cell.step(mult, &mut r).utilization)
                .sum::<f64>()
                / 50.0
        };
        let low = run(0.2);
        let high = run(0.9);
        assert!(high > 1.5 * low, "high {high} vs low {low}");
        assert!(low > 0.0);
    }

    #[test]
    fn saturated_cell_blocks_and_caps_at_one() {
        let mut cfg = UeModelConfig::default_eval();
        cfg.peak_arrival_rate = 20.0; // far beyond capacity
        let mut cell = UeCell::new(cfg);
        let mut r = rng(3);
        let mut last = CellLoad {
            utilization: 0.0,
            mean_mcs: None,
            users: 0,
            blocked: 0,
        };
        for _ in 0..10 {
            last = cell.step(1.0, &mut r);
            assert!(last.utilization <= 1.0 + 1e-12);
        }
        assert!(last.blocked > 0, "overload must block arrivals");
        assert!(cell.blocking_probability() > 0.3);
        assert!(
            cell.congestion_blocking() > 0.25,
            "overload blocking must be congestion, not coverage: {}",
            cell.congestion_blocking()
        );
    }

    #[test]
    fn mean_mcs_within_table_range() {
        let mut cell = UeCell::new(UeModelConfig::default_eval());
        let mut r = rng(4);
        for _ in 0..30 {
            let load = cell.step(0.8, &mut r);
            if let Some(m) = load.mean_mcs {
                assert!((0.0..=28.0).contains(&m), "mean MCS {m}");
            }
        }
    }

    #[test]
    fn sessions_drain_when_arrivals_stop() {
        let mut cell = UeCell::new(UeModelConfig::default_eval());
        let mut r = rng(5);
        for _ in 0..20 {
            cell.step(1.0, &mut r);
        }
        // 20 steps of 60 s at 90 s mean session → everything drains fast.
        for _ in 0..20 {
            cell.step(0.0, &mut r);
        }
        let load = cell.step(0.0, &mut r);
        assert_eq!(load.users, 0, "sessions must expire");
    }

    #[test]
    fn synthesized_trace_validates_and_pools() {
        let cfg = UeModelConfig::default_eval(); // 60 s steps, 90 s sessions
        let trace = synthesize_trace(12, &cfg, 24.0 * 3600.0, 9);
        assert!(trace.validate().is_ok());
        assert_eq!(trace.num_cells(), 12);
        // Microscopic dynamics still produce diurnal multiplexing gain.
        assert!(
            trace.multiplexing_gain() > 1.1,
            "gain {}",
            trace.multiplexing_gain()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = UeModelConfig::default_eval();
        let a = synthesize_trace(4, &cfg, 6.0 * 3600.0, 42);
        let b = synthesize_trace(4, &cfg, 6.0 * 3600.0, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too coarse")]
    fn coarse_steps_rejected() {
        UeCell::new(UeModelConfig {
            step_seconds: 600.0,
            ..UeModelConfig::default_eval()
        });
    }

    #[test]
    fn grant_cap_limits_single_sessions() {
        // With the per-bearer cap no admitted session may hold more than
        // max_grant_fraction of the grid; oversized demands land in the
        // coverage/service counter, never in the congestion counter while
        // the grid has room.
        let cfg = UeModelConfig::default_eval();
        let grid = cfg.bandwidth.prbs();
        let cap = (f64::from(grid) * cfg.max_grant_fraction) as u32;
        let mut cell = UeCell::new(cfg);
        let mut r = rng(17);
        let mut max_prbs = 0u32;
        for _ in 0..200 {
            let load = cell.step(0.5, &mut r);
            let in_use = (load.utilization * f64::from(grid)).round() as u32;
            max_prbs = max_prbs.max(in_use / load.users.max(1) as u32);
        }
        assert!(
            max_prbs <= cap,
            "mean grant {max_prbs} exceeds per-bearer cap {cap}"
        );
        assert!(
            cell.blocked_coverage > 0,
            "deep-shadowed UEs must be refused"
        );
    }

    #[test]
    #[should_panic(expected = "max_grant_fraction")]
    fn zero_grant_fraction_rejected() {
        UeCell::new(UeModelConfig {
            max_grant_fraction: 0.0,
            ..UeModelConfig::default_eval()
        });
    }
}
