//! Exporters: JSON-lines trace dumps, schema validation, the
//! per-subframe latency breakdown and human-readable summary tables.
//!
//! The JSONL export is canonical: events are serialized with a fixed key
//! order and sorted by `(timestamp, serialized text)`, so the byte output
//! is independent of which thread drained which buffer first. Two
//! deterministic simulated runs therefore produce byte-identical files.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Duration;

use serde_json::{Map, Number, Value};

use crate::metrics::{InstrumentValue, LogHistogram, RegistrySnapshot};
use crate::trace::{FieldValue, TraceEvent};

/// Serialize one event as a JSON object with fixed key order
/// (`ts_us`, `domain`, `name`, `fields`).
pub fn event_to_value(event: &TraceEvent) -> Value {
    let mut fields = Map::new();
    for (k, v) in event.fields() {
        let value = match v {
            FieldValue::U64(x) => Value::Number(Number::U64(*x)),
            FieldValue::I64(x) => Value::Number(Number::I64(*x)),
            FieldValue::F64(x) => Value::Number(Number::F64(*x)),
            FieldValue::Bool(x) => Value::Bool(*x),
            FieldValue::Str(x) => Value::String((*x).to_string()),
        };
        fields.insert((*k).to_string(), value);
    }
    let mut obj = Map::new();
    obj.insert("ts_us".to_string(), Value::Number(Number::U64(event.ts_us)));
    obj.insert(
        "domain".to_string(),
        Value::String(event.domain.label().to_string()),
    );
    obj.insert("name".to_string(), Value::String(event.name.to_string()));
    obj.insert("fields".to_string(), Value::Object(fields));
    Value::Object(obj)
}

/// Render events as canonical JSON-lines text (sorted, trailing newline;
/// empty string for no events).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut lines: Vec<(u64, String)> = events
        .iter()
        .map(|e| (e.ts_us, event_to_value(e).to_json_string()))
        .collect();
    lines.sort();
    let mut out = String::new();
    for (_, line) in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Write events as canonical JSONL to `path`; returns the event count.
pub fn write_jsonl(path: impl AsRef<Path>, events: &[TraceEvent]) -> io::Result<usize> {
    std::fs::write(path, to_jsonl(events))?;
    Ok(events.len())
}

fn check_line(line_no: usize, line: &str) -> Result<(), String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("line {line_no}: not valid JSON: {e:?}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| format!("line {line_no}: not a JSON object"))?;
    obj.get("ts_us")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing unsigned `ts_us`"))?;
    let domain = obj
        .get("domain")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string `domain`"))?;
    if domain != "sim" && domain != "mono" {
        return Err(format!("line {line_no}: bad domain {domain:?}"));
    }
    let name = obj
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string `name`"))?;
    if name.is_empty() {
        return Err(format!("line {line_no}: empty event name"));
    }
    let fields = obj
        .get("fields")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("line {line_no}: missing object `fields`"))?;
    for (key, field) in fields.iter() {
        let ok = matches!(field, Value::Number(_) | Value::Bool(_) | Value::String(_));
        if !ok {
            return Err(format!("line {line_no}: field {key:?} is not scalar"));
        }
    }
    if name == "subframe" {
        for required in ["cell", "release_us", "start_us", "finish_us", "deadline_us"] {
            if fields.get(required).and_then(Value::as_u64).is_none() {
                return Err(format!(
                    "line {line_no}: subframe event missing numeric {required:?}"
                ));
            }
        }
    }
    if name == "chaos.violation" {
        const KINDS: [&str; 5] = [
            "placement_valid",
            "capacity_bound",
            "outage_exceeded",
            "miss_ratio_exceeded",
            "restore_fidelity",
        ];
        let kind = fields
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {line_no}: chaos.violation missing string `kind`"))?;
        if !KINDS.contains(&kind) {
            return Err(format!(
                "line {line_no}: chaos.violation has unknown kind {kind:?}"
            ));
        }
    }
    if name == "insight.alert" {
        if fields.get("metric").and_then(Value::as_str).is_none() {
            return Err(format!(
                "line {line_no}: insight.alert missing string `metric`"
            ));
        }
        for required in ["value", "threshold"] {
            if fields.get(required).and_then(Value::as_f64).is_none() {
                return Err(format!(
                    "line {line_no}: insight.alert missing numeric {required:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Validate JSONL text against the exporter schema; returns the event
/// count, or a message naming the first offending line.
///
/// Schema: every line is an object with unsigned `ts_us`, `domain` of
/// `"sim"`/`"mono"`, non-empty string `name` and an object `fields` of
/// scalar values; `subframe` events additionally carry numeric `cell`,
/// `release_us`, `start_us`, `finish_us` and `deadline_us`;
/// `chaos.violation` events carry a string `kind` naming one of the five
/// chaos invariants; `insight.alert` events carry a string `metric` plus
/// numeric `value` and `threshold`.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        check_line(idx + 1, line)?;
        count += 1;
    }
    Ok(count)
}

/// Per-subframe latency decomposition reconstructed from `subframe`
/// trace events: where each task's HARQ budget went.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Subframe tasks seen.
    pub tasks: u64,
    /// Tasks finishing past their deadline.
    pub misses: u64,
    /// Queue wait: task start − release.
    pub queue: LogHistogram,
    /// Kernel compute: task finish − start.
    pub service: LogHistogram,
    /// Deadline slack of on-time tasks: deadline − finish.
    pub slack: LogHistogram,
}

fn accumulate(
    breakdown: &mut LatencyBreakdown,
    release: u64,
    start: u64,
    finish: u64,
    deadline: u64,
) {
    breakdown.tasks += 1;
    breakdown
        .queue
        .record(Duration::from_micros(start.saturating_sub(release)));
    breakdown
        .service
        .record(Duration::from_micros(finish.saturating_sub(start)));
    if finish > deadline {
        breakdown.misses += 1;
    } else {
        breakdown
            .slack
            .record(Duration::from_micros(deadline - finish));
    }
}

/// Build the latency breakdown from in-memory `subframe` events.
pub fn subframe_breakdown(events: &[TraceEvent]) -> LatencyBreakdown {
    let mut breakdown = LatencyBreakdown::default();
    for event in events.iter().filter(|e| e.name == "subframe") {
        let (Some(release), Some(start), Some(finish), Some(deadline)) = (
            event.field_u64("release_us"),
            event.field_u64("start_us"),
            event.field_u64("finish_us"),
            event.field_u64("deadline_us"),
        ) else {
            continue;
        };
        accumulate(&mut breakdown, release, start, finish, deadline);
    }
    breakdown
}

/// Build the latency breakdown back from exported JSONL text.
pub fn breakdown_from_jsonl(text: &str) -> Result<LatencyBreakdown, String> {
    let mut breakdown = LatencyBreakdown::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not valid JSON: {e:?}", idx + 1))?;
        if value.get("name").and_then(Value::as_str) != Some("subframe") {
            continue;
        }
        let fields = value
            .get("fields")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("line {}: subframe without fields", idx + 1))?;
        let num = |key: &str| {
            fields
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: subframe missing {key:?}", idx + 1))
        };
        accumulate(
            &mut breakdown,
            num("release_us")?,
            num("start_us")?,
            num("finish_us")?,
            num("deadline_us")?,
        );
    }
    Ok(breakdown)
}

fn fmt_us(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1000.0)
    } else {
        format!("{us}µs")
    }
}

fn histogram_row(out: &mut String, label: &str, h: &LogHistogram) {
    // `try_quantile` so an empty histogram renders "-", not a perfect 0.
    let q = |q: f64| match h.try_quantile(q) {
        Some(d) => fmt_us(d),
        None => "-".to_string(),
    };
    let _ = writeln!(
        out,
        "{label:<18} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        h.count(),
        fmt_us(h.mean()),
        q(0.50),
        q(0.95),
        q(0.99),
        fmt_us(h.max()),
    );
}

fn histogram_header(out: &mut String) {
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "", "count", "mean", "p50", "p95", "p99", "max"
    );
}

/// Render a registry snapshot as a human-readable table; histograms get
/// count/mean/p50/p95/p99/max columns.
pub fn summary_table(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== telemetry summary ==");
    if snapshot.instruments.is_empty() {
        let _ = writeln!(out, "(no instruments)");
        return out;
    }
    let mut wrote_histogram_header = false;
    for inst in &snapshot.instruments {
        let mut name = inst.name.clone();
        if !inst.labels.is_empty() {
            let labels: Vec<String> = inst
                .labels
                .iter()
                .map(|l| format!("{}={}", l.key, l.value))
                .collect();
            let _ = write!(name, "{{{}}}", labels.join(","));
        }
        match &inst.value {
            InstrumentValue::Counter(c) => {
                let _ = writeln!(out, "{name:<40} counter {c}");
            }
            InstrumentValue::Gauge(g) => {
                let _ = writeln!(out, "{name:<40} gauge   {g}");
            }
            InstrumentValue::Histogram(h) => {
                if !wrote_histogram_header {
                    histogram_header(&mut out);
                    wrote_histogram_header = true;
                }
                histogram_row(&mut out, &name, h);
            }
        }
    }
    out
}

/// Render the latency breakdown as a human-readable table.
pub fn breakdown_table(breakdown: &LatencyBreakdown) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== subframe latency breakdown ({} tasks, {} deadline misses) ==",
        breakdown.tasks, breakdown.misses
    );
    histogram_header(&mut out);
    histogram_row(&mut out, "queue wait", &breakdown.queue);
    histogram_row(&mut out, "kernel compute", &breakdown.service);
    histogram_row(&mut out, "deadline slack", &breakdown.slack);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Domain;
    use crate::Registry;

    fn subframe(ts: u64, cell: u64, release: u64, start: u64, finish: u64, dl: u64) -> TraceEvent {
        TraceEvent::new(
            ts,
            Domain::Sim,
            "subframe",
            &[
                ("cell", cell.into()),
                ("release_us", release.into()),
                ("start_us", start.into()),
                ("finish_us", finish.into()),
                ("deadline_us", dl.into()),
            ],
        )
    }

    #[test]
    fn jsonl_is_sorted_and_valid() {
        let events = vec![
            subframe(500, 1, 400, 450, 500, 2400),
            subframe(100, 0, 0, 20, 100, 2000),
            TraceEvent::new(100, Domain::Sim, "pool.epoch", &[("epoch", 1u64.into())]),
        ];
        let text = to_jsonl(&events);
        assert_eq!(validate_jsonl(&text).unwrap(), 3);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Sorted by timestamp first; ties broken by serialized text.
        assert!(lines[0].contains("\"ts_us\":100"));
        assert!(lines[2].contains("\"ts_us\":500"));
        // Shuffled input yields byte-identical output.
        let shuffled = vec![events[2], events[0], events[1]];
        assert_eq!(to_jsonl(&shuffled), text);
    }

    #[test]
    fn validation_rejects_bad_lines() {
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_jsonl("{\"ts_us\":1}\n").is_err());
        let missing_field =
            "{\"ts_us\":1,\"domain\":\"sim\",\"name\":\"subframe\",\"fields\":{}}\n";
        let err = validate_jsonl(missing_field).unwrap_err();
        assert!(err.contains("cell"), "{err}");
        let bad_domain = "{\"ts_us\":1,\"domain\":\"cpu\",\"name\":\"x\",\"fields\":{}}\n";
        assert!(validate_jsonl(bad_domain).is_err());
        assert_eq!(validate_jsonl("").unwrap(), 0);
    }

    #[test]
    fn validation_knows_chaos_violations() {
        let good = "{\"ts_us\":5,\"domain\":\"sim\",\"name\":\"chaos.violation\",\
                    \"fields\":{\"kind\":\"outage_exceeded\"}}\n";
        assert_eq!(validate_jsonl(good).unwrap(), 1);
        let missing_kind =
            "{\"ts_us\":5,\"domain\":\"sim\",\"name\":\"chaos.violation\",\"fields\":{}}\n";
        let err = validate_jsonl(missing_kind).unwrap_err();
        assert!(err.contains("kind"), "{err}");
        let unknown_kind = "{\"ts_us\":5,\"domain\":\"sim\",\"name\":\"chaos.violation\",\
                            \"fields\":{\"kind\":\"pool_on_fire\"}}\n";
        let err = validate_jsonl(unknown_kind).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }

    #[test]
    fn validation_knows_insight_alerts() {
        let good = "{\"ts_us\":9,\"domain\":\"sim\",\"name\":\"insight.alert\",\
                    \"fields\":{\"metric\":\"miss_ratio\",\"epoch\":3,\
                    \"value\":0.04,\"ewma\":0.02,\"threshold\":0.01}}\n";
        assert_eq!(validate_jsonl(good).unwrap(), 1);
        let missing_metric = "{\"ts_us\":9,\"domain\":\"sim\",\"name\":\"insight.alert\",\
                              \"fields\":{\"value\":1.0,\"threshold\":0.5}}\n";
        let err = validate_jsonl(missing_metric).unwrap_err();
        assert!(err.contains("metric"), "{err}");
        let missing_threshold = "{\"ts_us\":9,\"domain\":\"sim\",\"name\":\"insight.alert\",\
                                 \"fields\":{\"metric\":\"miss_ratio\",\"value\":1.0}}\n";
        let err = validate_jsonl(missing_threshold).unwrap_err();
        assert!(err.contains("threshold"), "{err}");
    }

    #[test]
    fn breakdown_reconstructs_from_jsonl() {
        let events = vec![
            // queue 50, service 150, slack 1800
            subframe(200, 0, 0, 50, 200, 2000),
            // queue 100, service 400, miss (finish 2500 > deadline 2400)
            subframe(2500, 1, 2000, 2100, 2500, 2400),
        ];
        let direct = subframe_breakdown(&events);
        let text = to_jsonl(&events);
        let from_text = breakdown_from_jsonl(&text).unwrap();
        assert_eq!(direct, from_text);
        assert_eq!(direct.tasks, 2);
        assert_eq!(direct.misses, 1);
        assert_eq!(direct.queue.count(), 2);
        assert_eq!(direct.service.count(), 2);
        assert_eq!(direct.slack.count(), 1);
        assert_eq!(direct.slack.quantile(0.5), Duration::from_micros(1800));
        let table = breakdown_table(&direct);
        assert!(table.contains("2 tasks"));
        assert!(table.contains("queue wait"));
    }

    #[test]
    fn summary_table_renders_all_kinds() {
        let r = Registry::new();
        r.inc("ilp.nodes", &[("policy", "bnb")], 42);
        r.gauge("pool.util", &[], 0.5);
        r.observe("place.time", &[], Duration::from_micros(1234));
        let table = summary_table(&r.snapshot());
        assert!(table.contains("ilp.nodes{policy=bnb}"));
        assert!(table.contains("counter 42"));
        assert!(table.contains("p99"));
        assert!(summary_table(&RegistrySnapshot {
            instruments: vec![]
        })
        .contains("no instruments"));
    }
}
