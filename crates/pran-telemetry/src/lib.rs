//! `pran-telemetry` — unified tracing, metrics and profiling for the pool.
//!
//! PRAN's argument is quantitative (multiplexing gains, ≈2 ms HARQ compute
//! budgets, heuristic-vs-ILP gaps), so every layer must report through one
//! substrate or cross-layer questions like "where did a missed subframe's
//! 2 ms go?" stay unanswerable. This crate provides that substrate:
//!
//! * [`trace`] — a lightweight span/event facade with per-thread buffers
//!   and a zero-allocation fast path (one relaxed atomic load when
//!   disabled). Events carry either *simulated* timestamps supplied by the
//!   caller (deterministic under the virtual-clock executor) or *monotonic*
//!   wall-clock timestamps for real execution;
//! * [`metrics`] — a registry of named, labeled counters, gauges and
//!   [`metrics::LogHistogram`]s (promoted here from `pran-sim`);
//! * [`export`] — JSON-lines trace dumps, human-readable summary tables
//!   and the per-subframe latency breakdown (queue wait → kernel compute →
//!   HARQ deadline slack) reconstructed from a trace.
//!
//! The crate is dependency-free within the workspace (only the vendored
//! `serde`/`parking_lot` stand-ins), so every layer can emit into it
//! without cycles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod metrics;
pub mod trace;

use serde::{Deserialize, Serialize};

pub use metrics::{LogHistogram, Registry, RegistrySnapshot};
pub use trace::{Domain, FieldValue, TraceClock, TraceEvent};

/// Telemetry knobs, wired through `pran::config` and the bench binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch. Off, every record call is one relaxed atomic load.
    pub enabled: bool,
    /// Which clock domains are recorded. [`TraceClock::SimOnly`] keeps
    /// traces byte-identical across same-seed runs by dropping wall-clock
    /// events; [`TraceClock::Full`] records both domains.
    pub clock: TraceClock,
    /// Per-thread buffer length (events) before spilling to the shared
    /// sink. Larger buffers lock less; each buffered event is ~128 bytes.
    pub buffer_events: usize,
}

impl TelemetryConfig {
    /// Telemetry off (the default; the fast path costs one atomic load).
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            clock: TraceClock::SimOnly,
            buffer_events: 8192,
        }
    }

    /// Deterministic tracing: simulated-clock events only.
    pub fn sim() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Full tracing: simulated and monotonic wall-clock events.
    pub fn full() -> Self {
        TelemetryConfig {
            enabled: true,
            clock: TraceClock::Full,
            ..Self::disabled()
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Apply a configuration to the global tracer: resets the event sink,
/// invalidates per-thread buffers from earlier runs and flips the enable
/// switch. See [`trace::configure`].
pub fn configure(config: TelemetryConfig) {
    trace::configure(config);
}

/// Disable tracing (buffered events stay drainable).
pub fn disable() {
    trace::disable();
}

/// Whether tracing is currently enabled (the fast-path check).
///
/// One relaxed atomic load. Hot loops should hoist this once per
/// epoch/worker and skip building event field arrays entirely when it is
/// false — the arrays (not the guarded [`trace::sim_event`] call) are the
/// off-mode cost.
#[inline]
pub fn enabled() -> bool {
    trace::enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets_and_roundtrip() {
        assert!(!TelemetryConfig::default().enabled);
        assert!(TelemetryConfig::sim().enabled);
        assert_eq!(TelemetryConfig::sim().clock, TraceClock::SimOnly);
        assert_eq!(TelemetryConfig::full().clock, TraceClock::Full);
        let c = TelemetryConfig::full();
        let json = serde_json::to_string(&c).unwrap();
        let back: TelemetryConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
