//! Metrics: the log-scale histogram (promoted from `pran-sim`) and a
//! registry of named, labeled instruments.
//!
//! The registry is a process-wide, lock-protected map from
//! `(name, sorted labels)` to an instrument (counter, gauge or
//! [`LogHistogram`]). Snapshots are deterministic — instruments come out
//! sorted by name then labels — and serde round-trippable so bench
//! binaries can stamp them into result files.

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

const BUCKETS: usize = 40;

/// A base-2 logarithmic histogram over microsecond values.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` µs; bucket 0 also absorbs
/// sub-microsecond samples. 40 buckets reach ~12.7 days. Tracking the
/// observed min/max lets [`LogHistogram::quantile`] interpolate inside the
/// edge buckets, so single-valued histograms report the true value rather
/// than a power-of-two edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    /// Sum in microseconds (for the mean).
    sum_us: u64,
    max_us: u64,
    min_us: u64,
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
            min_us: 0,
        }
    }

    /// Record a duration.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Record a value already truncated to whole microseconds — the
    /// zero-conversion entry point for hot paths that keep time as
    /// integer nanoseconds (`record_us(ns / 1000)` lands in exactly the
    /// bucket `record(Duration::from_nanos(ns))` would).
    #[inline]
    pub fn record_us(&mut self, us: u64) {
        let idx = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.min_us = if self.count == 0 {
            us
        } else {
            self.min_us.min(us)
        };
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded durations.
    pub fn mean(&self) -> Duration {
        match self.sum_us.checked_div(self.count) {
            Some(mean) => Duration::from_micros(mean),
            None => Duration::ZERO,
        }
    }

    /// Maximum recorded duration.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Minimum recorded duration ([`Duration::ZERO`] when empty).
    pub fn min(&self) -> Duration {
        Duration::from_micros(self.min_us)
    }

    /// Sum of all recorded durations.
    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_us)
    }

    /// Approximate quantile with linear interpolation inside the bucket.
    ///
    /// Convenience wrapper over [`LogHistogram::try_quantile`] that maps
    /// the empty-histogram case to [`Duration::ZERO`]. Anything that
    /// *emits* quantiles (bench envelopes, insight tables) must use
    /// `try_quantile` and render the empty case as `null`/`-`: a masked
    /// zero reads as a perfect p99 and sails through regression gates.
    pub fn quantile(&self, q: f64) -> Duration {
        self.try_quantile(q).unwrap_or(Duration::ZERO)
    }

    /// Approximate quantile with linear interpolation inside the bucket,
    /// or `None` when the histogram is empty.
    ///
    /// The q-quantile sample's bucket is located by cumulative count, then
    /// the estimate interpolates between the bucket edges, tightened by
    /// the observed min/max so the extreme buckets don't overshoot.
    /// Accurate to the bucket's base-2 resolution; exact (no
    /// interpolation) for single-sample histograms.
    pub fn try_quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        if self.count == 1 {
            // min == max == the one sample: return it exactly rather than
            // interpolating against a power-of-two bucket edge.
            return Some(Duration::from_micros(self.min_us));
        }
        Some(self.quantile_interpolated(q))
    }

    fn quantile_interpolated(&self, q: f64) -> Duration {
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= target {
                let lo_edge = if i == 0 { 0 } else { 1u64 << i };
                let hi_edge = if i == BUCKETS - 1 {
                    self.max_us.saturating_add(1)
                } else {
                    1u64 << (i + 1)
                };
                let hi = hi_edge.min(self.max_us.saturating_add(1)).max(1);
                let lo = lo_edge.max(self.min_us).min(hi - 1);
                let frac = (target - seen) as f64 / b as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                let v = (v.round() as u64).clamp(lo, hi - 1);
                return Duration::from_micros(v);
            }
            seen += b;
        }
        self.max()
    }

    /// Reset to empty while keeping the bucket allocation, so epoch-scoped
    /// histograms on resident-service hot paths can be reused without
    /// touching the heap (`tests/zero_alloc.rs` relies on this).
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum_us = 0;
        self.max_us = 0;
        self.min_us = 0;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.min_us = if self.count == 0 {
            other.min_us
        } else {
            self.min_us.min(other.min_us)
        };
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// One instrument in the registry.
#[derive(Debug, Clone, PartialEq)]
enum Instrument {
    Counter(u64),
    Gauge(f64),
    Histogram(LogHistogram),
}

type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

/// A registry of named, labeled instruments.
///
/// Lookups allocate the key, so the registry suits per-solve and
/// per-epoch granularity, not per-sample hot loops — aggregate locally
/// (e.g. in a [`LogHistogram`]) and merge in afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<Key, Instrument>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry {
            instruments: Mutex::new(BTreeMap::new()),
        }
    }

    /// Add `by` to a counter, creating it at zero.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        let mut map = self.instruments.lock();
        match map
            .entry(key(name, labels))
            .or_insert(Instrument::Counter(0))
        {
            Instrument::Counter(c) => *c += by,
            other => *other = Instrument::Counter(by),
        }
    }

    /// Set a gauge to its latest value.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.instruments
            .lock()
            .insert(key(name, labels), Instrument::Gauge(value));
    }

    /// Record a duration into a histogram instrument.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], d: Duration) {
        let mut map = self.instruments.lock();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Instrument::Histogram(LogHistogram::new()))
        {
            Instrument::Histogram(h) => h.record(d),
            other => {
                let mut h = LogHistogram::new();
                h.record(d);
                *other = Instrument::Histogram(h);
            }
        }
    }

    /// Merge a locally-aggregated histogram into a histogram instrument.
    pub fn merge_histogram(&self, name: &str, labels: &[(&str, &str)], h: &LogHistogram) {
        let mut map = self.instruments.lock();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Instrument::Histogram(LogHistogram::new()))
        {
            Instrument::Histogram(existing) => existing.merge(h),
            other => *other = Instrument::Histogram(h.clone()),
        }
    }

    /// Deterministic snapshot: instruments sorted by name, then labels.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.instruments.lock();
        RegistrySnapshot {
            instruments: map
                .iter()
                .map(|((name, labels), instrument)| InstrumentSnapshot {
                    name: name.clone(),
                    labels: labels
                        .iter()
                        .map(|(k, v)| Label {
                            key: k.clone(),
                            value: v.clone(),
                        })
                        .collect(),
                    value: match instrument {
                        Instrument::Counter(c) => InstrumentValue::Counter(*c),
                        Instrument::Gauge(g) => InstrumentValue::Gauge(*g),
                        Instrument::Histogram(h) => InstrumentValue::Histogram(h.clone()),
                    },
                })
                .collect(),
        }
    }

    /// Remove every instrument.
    pub fn clear(&self) {
        self.instruments.lock().clear();
    }
}

/// The process-wide registry instrumented code records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One label key/value pair in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Label {
    /// Label key.
    pub key: String,
    /// Label value.
    pub value: String,
}

/// The value a snapshotted instrument held.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstrumentValue {
    /// Monotonic counter.
    Counter(u64),
    /// Latest-value gauge.
    Gauge(f64),
    /// Duration distribution.
    Histogram(LogHistogram),
}

/// One instrument captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentSnapshot {
    /// Instrument name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<Label>,
    /// Captured value.
    pub value: InstrumentValue,
}

/// A point-in-time capture of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Instruments sorted by name, then labels.
    pub instruments: Vec<InstrumentSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> Duration {
        Duration::from_micros(x)
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = LogHistogram::new();
        for &v in &[10u64, 20, 40, 80] {
            h.record(us(v));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), us(37));
        assert_eq!(h.max(), us(80));
        assert_eq!(h.min(), us(10));
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(us(i));
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        // Median of 1..=1000 ≈ 500 µs; interpolation should land close.
        assert!(q50 >= us(256) && q50 <= us(1024), "q50 {q50:?}");
        assert!(q50 >= us(450) && q50 <= us(550), "q50 {q50:?}");
        // p99 of 1..=1000 ≈ 990 µs, inside bucket [512, 1024).
        assert!(q99 >= us(900) && q99 <= us(1000), "q99 {q99:?}");
    }

    #[test]
    fn empty_histogram_safe() {
        let h = LogHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.sum(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.quantile(0.0), Duration::ZERO);
        assert_eq!(h.try_quantile(0.5), None);
        assert_eq!(h.try_quantile(0.0), None);
        assert_eq!(h.try_quantile(1.0), None);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(Duration::from_millis(50));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::from_millis(50), "q={q}");
            assert_eq!(h.try_quantile(q), Some(Duration::from_millis(50)), "q={q}");
        }
        // A single sample sitting on no bucket boundary must come back
        // exactly, not as a bucket-edge interpolation.
        let mut odd = LogHistogram::new();
        odd.record(us(777));
        assert_eq!(odd.try_quantile(0.5), Some(us(777)));
        assert_eq!(odd.try_quantile(0.99), Some(us(777)));
    }

    #[test]
    fn pinned_quantiles_uniform_distribution() {
        // 1..=1000 µs uniform: exact p50 = 500, p95 = 950, p99 = 990.
        // The log-histogram is accurate to base-2 bucket resolution with
        // min/max tightening; pin each estimate to a window around truth.
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(us(i));
        }
        let p50 = h.try_quantile(0.50).unwrap();
        let p95 = h.try_quantile(0.95).unwrap();
        let p99 = h.try_quantile(0.99).unwrap();
        assert!(p50 >= us(450) && p50 <= us(550), "p50 {p50:?}");
        assert!(p95 >= us(850) && p95 <= us(1000), "p95 {p95:?}");
        assert!(p99 >= us(900) && p99 <= us(1000), "p99 {p99:?}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.sum(), us(500_500));
    }

    #[test]
    fn pinned_quantiles_bimodal_distribution() {
        // 90 samples at 100 µs, 10 at 10 000 µs: p50 sits in the low
        // mode's bucket [64,128) clamped below by min=100; p95 and p99
        // interpolate inside the high mode's bucket [8192, 10001) capped
        // above by max=10 000.
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(us(100));
        }
        for _ in 0..10 {
            h.record(us(10_000));
        }
        let p50 = h.try_quantile(0.50).unwrap();
        let p95 = h.try_quantile(0.95).unwrap();
        let p99 = h.try_quantile(0.99).unwrap();
        assert!(p50 >= us(100) && p50 < us(128), "p50 {p50:?}");
        assert!(p95 >= us(8192) && p95 <= us(10_000), "p95 {p95:?}");
        assert!(p99 >= us(8192) && p99 <= us(10_000), "p99 {p99:?}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn pinned_quantiles_constant_distribution() {
        // Every sample identical: min == max forces all quantiles to the
        // constant regardless of bucket interpolation.
        let mut h = LogHistogram::new();
        for _ in 0..37 {
            h.record(us(300));
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.try_quantile(q), Some(us(300)), "q={q}");
        }
    }

    #[test]
    fn saturated_bucket_quantile() {
        let mut h = LogHistogram::new();
        // 2^45 µs lands past the last bucket edge and must saturate into
        // bucket 39 without overshooting the observed max.
        h.record(Duration::from_micros(1 << 45));
        h.record(Duration::from_micros(1 << 45));
        assert_eq!(h.quantile(0.5), Duration::from_micros(1 << 45));
        assert_eq!(h.quantile(1.0), Duration::from_micros(1 << 45));
    }

    #[test]
    fn histogram_zero_and_huge() {
        let mut h = LogHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Duration::ZERO);
        assert!(h.quantile(1.0) >= Duration::from_secs(3600));
    }

    #[test]
    fn histogram_merge_tracks_min_max() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(us(5));
        b.record(us(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), us(500));
        assert_eq!(a.min(), us(5));
        let mut empty = LogHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.min(), us(5));
        a.merge(&LogHistogram::new());
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn histogram_serde_roundtrip() {
        let mut h = LogHistogram::new();
        h.record(us(123));
        h.record(us(456_789));
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn registry_snapshot_is_deterministic_and_roundtrips() {
        let r = Registry::new();
        r.inc("solves", &[("kind", "ffd")], 2);
        r.inc("solves", &[("kind", "bfd")], 1);
        r.gauge("utilization", &[], 0.75);
        r.observe("solve_time", &[("kind", "ffd")], us(1500));
        r.observe("solve_time", &[("kind", "ffd")], us(2500));
        // Label order at the call site must not matter.
        r.inc("multi", &[("b", "2"), ("a", "1")], 1);
        r.inc("multi", &[("a", "1"), ("b", "2")], 1);

        let snap = r.snapshot();
        let names: Vec<&str> = snap.instruments.iter().map(|i| i.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let multi = snap.instruments.iter().find(|i| i.name == "multi").unwrap();
        assert_eq!(multi.value, InstrumentValue::Counter(2));

        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        r.clear();
        assert!(r.snapshot().instruments.is_empty());
    }
}
