//! The tracing facade: events, clock domains and per-thread buffers.
//!
//! Recording is designed for hot paths. When disabled, every entry point
//! is a single relaxed atomic load. When enabled, an event is a fixed-size
//! `Copy` record (static name/key strings, no owned allocations) pushed
//! into a preallocated thread-local buffer; buffers spill into one shared
//! sink when full and stay reachable from a global list, so [`drain`]
//! sees the work-stealing executor's worker events even if those scoped
//! threads have not finished tearing down yet.
//!
//! Two clock domains keep determinism and profiling from fighting:
//!
//! * **Sim** events carry caller-supplied timestamps in simulated
//!   microseconds (`SimTime` / virtual core clocks), so a deterministic
//!   simulation produces a deterministic trace;
//! * **Mono** events are stamped from a process-wide monotonic epoch and
//!   carry real wall-clock timings. Under [`TraceClock::SimOnly`] they are
//!   dropped at the recording site, which is what makes two same-seed
//!   simulated runs export byte-identical traces.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::TelemetryConfig;

/// Which clock stamped an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Domain {
    /// Simulated time (caller-supplied microseconds).
    Sim,
    /// Monotonic wall-clock time since the process trace epoch.
    Mono,
}

impl Domain {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Sim => "sim",
            Domain::Mono => "mono",
        }
    }
}

/// Which clock domains the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceClock {
    /// Record only simulated-clock events (deterministic traces).
    SimOnly,
    /// Record simulated and monotonic wall-clock events.
    Full,
}

/// Maximum fields per event; excess fields are truncated.
pub const MAX_FIELDS: usize = 12;

/// A field value. Strings are `&'static str` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (e.g. signed deadline slack).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (labels, policy names).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

/// One trace record: timestamp, clock domain, static name and up to
/// [`MAX_FIELDS`] key/value fields. `Copy`, 100-odd bytes, no heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Timestamp in microseconds within the event's clock domain.
    pub ts_us: u64,
    /// Which clock stamped it.
    pub domain: Domain,
    /// Event name (dot-separated convention, e.g. `"subframe"`,
    /// `"pool.epoch"`, `"phy.turbo_decode"`).
    pub name: &'static str,
    fields: [(&'static str, FieldValue); MAX_FIELDS],
    len: u8,
}

impl TraceEvent {
    /// Build an event, truncating fields beyond [`MAX_FIELDS`].
    pub fn new(
        ts_us: u64,
        domain: Domain,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) -> Self {
        let mut stored = [("", FieldValue::U64(0)); MAX_FIELDS];
        let len = fields.len().min(MAX_FIELDS);
        stored[..len].copy_from_slice(&fields[..len]);
        TraceEvent {
            ts_us,
            domain,
            name,
            fields: stored,
            len: len as u8,
        }
    }

    /// The recorded fields, in recording order.
    pub fn fields(&self) -> &[(&'static str, FieldValue)] {
        &self.fields[..self.len as usize]
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<FieldValue> {
        self.fields()
            .iter()
            .find_map(|(k, v)| (*k == key).then_some(*v))
    }

    /// Look up a numeric field as `u64` (accepts `U64` and non-negative
    /// `I64`).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(v),
            FieldValue::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Global tracer state
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORD_MONO: AtomicBool = AtomicBool::new(false);
static FLUSH_AT: AtomicUsize = AtomicUsize::new(8192);

type SharedBuffer = Arc<Mutex<Vec<TraceEvent>>>;

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Every live thread buffer, so [`drain`] and [`configure`] can reach
/// buffers of threads that have not exited yet. `thread::scope` may
/// return to the spawner before a worker's thread-local destructors have
/// run, so exit-time flushing alone would race with a post-run drain.
fn buffers() -> &'static Mutex<Vec<SharedBuffer>> {
    static BUFFERS: OnceLock<Mutex<Vec<SharedBuffer>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

fn mono_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first use).
pub fn mono_now_us() -> u64 {
    mono_epoch().elapsed().as_micros() as u64
}

struct ThreadSlot {
    buffer: SharedBuffer,
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        let mut events = std::mem::take(&mut *self.buffer.lock());
        if !events.is_empty() {
            sink().lock().append(&mut events);
        }
        buffers().lock().retain(|b| !Arc::ptr_eq(b, &self.buffer));
    }
}

thread_local! {
    static LOCAL: RefCell<Option<ThreadSlot>> = const { RefCell::new(None) };
    /// Shard context: when set, every event recorded on this thread gets a
    /// trailing `("shard", id)` field (see [`set_shard`]).
    static SHARD: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Set (or clear) the calling thread's shard context.
///
/// While set, every event this thread records is stamped with a trailing
/// `("shard", id)` field — unless the event already carries [`MAX_FIELDS`]
/// fields, in which case the stamp is dropped rather than displacing a
/// caller field. The metro simulator sets this around each shard's run so
/// merged traces stay attributable (and sortable) per shard.
pub fn set_shard(shard: Option<u64>) {
    SHARD.with(|s| s.set(shard));
}

/// The calling thread's shard context, if any.
pub fn current_shard() -> Option<u64> {
    SHARD.with(|s| s.get())
}

/// Reorder every buffered event into canonical per-shard order: events
/// without a shard field first (in recording order), then each shard's
/// events in ascending shard id (each keeping its recording order).
///
/// Shard runs execute on whichever worker thread picks them up, so the
/// raw sink interleaves shards by spill timing — nondeterministic across
/// worker counts. Because one shard runs entirely on one thread, its
/// events keep their relative order through spills, and this stable sort
/// therefore yields the same byte sequence for any worker count or shard
/// execution order. Call after the workers have joined, before
/// [`drain`]/export.
pub fn canonicalize_by_shard() {
    // Hold the sink lock across take → merge → write-back. A worker
    // thread's exit-time flush ([`ThreadSlot`]'s `Drop`) may run after
    // `thread::scope` has returned to the caller; with the lock held
    // there is no window where such a straggler's append lands between
    // our take and the write-back only to be overwritten (lost update).
    // The straggler either flushes before (we take it, via sink or its
    // still-registered buffer) or blocks and appends after the
    // canonical block — late, but never lost.
    let mut sink_guard = sink().lock();
    let mut events = std::mem::take(&mut *sink_guard);
    for buffer in buffers().lock().iter() {
        events.append(&mut buffer.lock());
    }
    events.sort_by_key(|e| e.field_u64("shard").map_or((0u8, 0u64), |s| (1, s)));
    *sink_guard = events;
}

/// Apply a configuration: clears the sink and every live thread buffer,
/// then flips the recording switches.
pub fn configure(config: TelemetryConfig) {
    for buffer in buffers().lock().iter() {
        buffer.lock().clear();
    }
    sink().lock().clear();
    FLUSH_AT.store(config.buffer_events.clamp(1, 1 << 20), Ordering::Relaxed);
    RECORD_MONO.store(matches!(config.clock, TraceClock::Full), Ordering::Relaxed);
    ENABLED.store(config.enabled, Ordering::Release);
}

/// Stop recording. Buffered events remain drainable via [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// The fast-path check: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn push(mut event: TraceEvent) {
    if let Some(shard) = current_shard() {
        let len = event.len as usize;
        if len < MAX_FIELDS {
            event.fields[len] = ("shard", FieldValue::U64(shard));
            event.len += 1;
        }
    }
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let slot = slot.get_or_insert_with(|| {
            let buffer: SharedBuffer = Arc::new(Mutex::new(Vec::new()));
            buffers().lock().push(Arc::clone(&buffer));
            ThreadSlot { buffer }
        });
        let flush_at = FLUSH_AT.load(Ordering::Relaxed);
        let mut events = slot.buffer.lock();
        if events.capacity() == 0 {
            events.reserve(flush_at);
        }
        events.push(event);
        if events.len() >= flush_at {
            let mut spilled = std::mem::take(&mut *events);
            drop(events);
            sink().lock().append(&mut spilled);
        }
    });
}

/// Record a simulated-clock event at `ts_us` simulated microseconds.
#[inline]
pub fn sim_event(name: &'static str, ts_us: u64, fields: &[(&'static str, FieldValue)]) {
    if !enabled() {
        return;
    }
    push(TraceEvent::new(ts_us, Domain::Sim, name, fields));
}

/// Record a monotonic wall-clock event (dropped under
/// [`TraceClock::SimOnly`]).
#[inline]
pub fn mono_event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !enabled() || !RECORD_MONO.load(Ordering::Relaxed) {
        return;
    }
    push(TraceEvent::new(mono_now_us(), Domain::Mono, name, fields));
}

/// A monotonic-clock span guard. Inactive (and free) when mono recording
/// is off; otherwise emits one event named after the span with a `dur_us`
/// field on [`Span::finish_with`] or drop.
#[must_use = "a span records its duration when finished or dropped"]
pub struct Span {
    name: &'static str,
    start_us: u64,
    active: bool,
}

/// Start a monotonic span (see [`Span`]).
#[inline]
pub fn span(name: &'static str) -> Span {
    let active = enabled() && RECORD_MONO.load(Ordering::Relaxed);
    Span {
        name,
        start_us: if active { mono_now_us() } else { 0 },
        active,
    }
}

impl Span {
    fn emit(&mut self, extra: &[(&'static str, FieldValue)]) {
        if !self.active {
            return;
        }
        self.active = false;
        let mut fields = [("", FieldValue::U64(0)); MAX_FIELDS];
        fields[0] = (
            "dur_us",
            FieldValue::U64(mono_now_us().saturating_sub(self.start_us)),
        );
        let extra_len = extra.len().min(MAX_FIELDS - 1);
        fields[1..1 + extra_len].copy_from_slice(&extra[..extra_len]);
        push(TraceEvent::new(
            self.start_us,
            Domain::Mono,
            self.name,
            &fields[..1 + extra_len],
        ));
    }

    /// Finish the span with extra fields attached.
    pub fn finish_with(mut self, extra: &[(&'static str, FieldValue)]) {
        self.emit(extra);
    }

    /// Finish the span.
    pub fn finish(self) {
        self.finish_with(&[]);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit(&[]);
    }
}

/// Flush the calling thread's buffer into the shared sink.
pub fn flush() {
    LOCAL.with(|slot| {
        if let Some(slot) = slot.borrow().as_ref() {
            let mut events = std::mem::take(&mut *slot.buffer.lock());
            if !events.is_empty() {
                sink().lock().append(&mut events);
            }
        }
    });
}

/// Take every event collected so far: the shared sink plus the contents
/// of every live thread buffer (so worker threads need not have exited).
pub fn drain() -> Vec<TraceEvent> {
    let mut out = std::mem::take(&mut *sink().lock());
    for buffer in buffers().lock().iter() {
        out.append(&mut buffer.lock());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global tracer state is shared; serialize the tests that touch it.
    pub(crate) fn lock_tracer() -> parking_lot::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock_tracer();
        configure(TelemetryConfig::disabled());
        sim_event("x", 1, &[]);
        mono_event("y", &[]);
        assert!(drain().is_empty());
    }

    #[test]
    fn sim_only_drops_mono_events() {
        let _g = lock_tracer();
        configure(TelemetryConfig::sim());
        sim_event("kept", 10, &[("a", 1u64.into())]);
        mono_event("dropped", &[]);
        span("dropped_span").finish();
        let events = drain();
        disable();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "kept");
        assert_eq!(events[0].ts_us, 10);
        assert_eq!(events[0].field_u64("a"), Some(1));
    }

    #[test]
    fn full_mode_records_mono_and_spans() {
        let _g = lock_tracer();
        configure(TelemetryConfig::full());
        mono_event("m", &[("k", "v".into())]);
        let s = span("s");
        s.finish_with(&[("n", 3u64.into())]);
        let events = drain();
        disable();
        assert_eq!(events.len(), 2);
        let span_ev = events.iter().find(|e| e.name == "s").unwrap();
        assert!(span_ev.field_u64("dur_us").is_some());
        assert_eq!(span_ev.field_u64("n"), Some(3));
        assert!(events.iter().all(|e| e.domain == Domain::Mono));
    }

    #[test]
    fn worker_thread_events_flush_on_exit() {
        let _g = lock_tracer();
        configure(TelemetryConfig::sim());
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..100u64 {
                        sim_event("w", worker * 1000 + i, &[("worker", worker.into())]);
                    }
                });
            }
        });
        let events = drain();
        disable();
        assert_eq!(events.len(), 400);
    }

    #[test]
    fn reconfigure_discards_stale_buffers() {
        let _g = lock_tracer();
        configure(TelemetryConfig::sim());
        sim_event("old", 1, &[]);
        // Not flushed yet; a reconfigure must invalidate it.
        configure(TelemetryConfig::sim());
        sim_event("new", 2, &[]);
        let events = drain();
        disable();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "new");
    }

    #[test]
    fn buffer_spills_at_threshold() {
        let _g = lock_tracer();
        let mut cfg = TelemetryConfig::sim();
        cfg.buffer_events = 8;
        configure(cfg);
        for i in 0..20u64 {
            sim_event("e", i, &[]);
        }
        // 16 events spilled by threshold crossings; 4 still local until
        // the explicit flush inside drain().
        assert!(sink().lock().len() >= 16);
        let events = drain();
        disable();
        assert_eq!(events.len(), 20);
    }

    #[test]
    fn shard_context_stamps_events() {
        let _g = lock_tracer();
        configure(TelemetryConfig::sim());
        set_shard(Some(3));
        sim_event("tagged", 1, &[("a", 1u64.into())]);
        set_shard(None);
        sim_event("untagged", 2, &[]);
        let events = drain();
        disable();
        assert_eq!(events[0].field_u64("shard"), Some(3));
        assert_eq!(events[0].field_u64("a"), Some(1), "caller fields kept");
        assert_eq!(events[1].field("shard"), None);
    }

    #[test]
    fn shard_stamp_never_displaces_caller_fields() {
        let _g = lock_tracer();
        configure(TelemetryConfig::sim());
        let full: Vec<(&'static str, FieldValue)> =
            (0..MAX_FIELDS).map(|_| ("k", FieldValue::U64(1))).collect();
        set_shard(Some(7));
        sim_event("full", 1, &full);
        set_shard(None);
        let events = drain();
        disable();
        assert_eq!(events[0].fields().len(), MAX_FIELDS);
        assert_eq!(events[0].field("shard"), None, "stamp dropped, not a field");
    }

    #[test]
    fn canonicalize_groups_shards_in_stable_order() {
        let _g = lock_tracer();
        configure(TelemetryConfig::sim());
        sim_event("main", 0, &[]);
        // Two "workers" interleaving their spills in opposite shard order.
        std::thread::scope(|scope| {
            for &shard in &[2u64, 1u64] {
                scope.spawn(move || {
                    set_shard(Some(shard));
                    for i in 0..3u64 {
                        sim_event("w", i, &[("i", i.into())]);
                    }
                    flush();
                    set_shard(None);
                });
            }
        });
        canonicalize_by_shard();
        let events = drain();
        disable();
        let shards: Vec<Option<u64>> = events.iter().map(|e| e.field_u64("shard")).collect();
        assert_eq!(
            shards,
            vec![None, Some(1), Some(1), Some(1), Some(2), Some(2), Some(2)]
        );
        // Within a shard, recording order survives.
        for shard in [1u64, 2] {
            let ts: Vec<u64> = events
                .iter()
                .filter(|e| e.field_u64("shard") == Some(shard))
                .map(|e| e.ts_us)
                .collect();
            assert_eq!(ts, vec![0, 1, 2]);
        }
    }

    #[test]
    fn field_truncation_is_bounded() {
        let fields: Vec<(&'static str, FieldValue)> = (0..MAX_FIELDS + 3)
            .map(|_| ("k", FieldValue::U64(1)))
            .collect();
        let ev = TraceEvent::new(0, Domain::Sim, "t", &fields);
        assert_eq!(ev.fields().len(), MAX_FIELDS);
    }
}
