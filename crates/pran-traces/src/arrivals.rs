//! Stochastic arrival processes layered on the diurnal envelope.
//!
//! The envelope fixes the *expected* load; short-timescale burstiness comes
//! from user arrivals. Two processes are provided: homogeneous Poisson (the
//! classical baseline) and a 2-state Markov-modulated Poisson process
//! (MMPP-2) whose bursty state captures flash-crowd-like clustering at
//! second scale. Both produce per-step *active session counts* via an
//! M/G/∞-style session model: arrivals join, sessions last an
//! exponentially distributed holding time.

use rand::Rng;

/// Sample a Poisson random variate with mean `lambda` (Knuth's method for
/// small means, normal approximation above 30 to stay O(1)).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let g = standard_normal(rng);
        return (lambda + lambda.sqrt() * g + 0.5).max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Sample an exponential variate with the given mean.
pub fn exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// One standard normal variate (Box–Muller).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A 2-state Markov-modulated Poisson process.
///
/// State 0 is "calm" (rate `rate_calm`), state 1 is "bursty"
/// (`rate_burst`). Transitions occur per step with the given probabilities.
#[derive(Debug, Clone)]
pub struct Mmpp2 {
    /// Arrival rate per step in the calm state.
    pub rate_calm: f64,
    /// Arrival rate per step in the bursty state.
    pub rate_burst: f64,
    /// P(calm → burst) per step.
    pub p_enter_burst: f64,
    /// P(burst → calm) per step.
    pub p_exit_burst: f64,
    state: u8,
}

impl Mmpp2 {
    /// Create in the calm state.
    pub fn new(rate_calm: f64, rate_burst: f64, p_enter_burst: f64, p_exit_burst: f64) -> Self {
        assert!(rate_calm >= 0.0 && rate_burst >= 0.0);
        assert!((0.0..=1.0).contains(&p_enter_burst));
        assert!((0.0..=1.0).contains(&p_exit_burst));
        Mmpp2 {
            rate_calm,
            rate_burst,
            p_enter_burst,
            p_exit_burst,
            state: 0,
        }
    }

    /// Whether the process is currently bursting.
    pub fn is_bursting(&self) -> bool {
        self.state == 1
    }

    /// Advance one step: maybe switch state, then emit an arrival count.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let flip: f64 = rng.gen();
        if self.state == 0 && flip < self.p_enter_burst {
            self.state = 1;
        } else if self.state == 1 && flip < self.p_exit_burst {
            self.state = 0;
        }
        let rate = if self.state == 0 {
            self.rate_calm
        } else {
            self.rate_burst
        };
        poisson(rate, rng)
    }

    /// Long-run average arrival rate.
    pub fn stationary_rate(&self) -> f64 {
        let denom = self.p_enter_burst + self.p_exit_burst;
        if denom == 0.0 {
            return self.rate_calm;
        }
        let pi_burst = self.p_enter_burst / denom;
        self.rate_calm * (1.0 - pi_burst) + self.rate_burst * pi_burst
    }
}

/// M/G/∞-style session pool: arrivals enter, each holds for an exponential
/// time, and the per-step output is the number of concurrently active
/// sessions.
#[derive(Debug, Clone)]
pub struct SessionPool {
    /// Mean session duration in steps.
    pub mean_duration_steps: f64,
    /// Remaining lifetimes of active sessions, in steps.
    remaining: Vec<f64>,
}

impl SessionPool {
    /// Empty pool.
    pub fn new(mean_duration_steps: f64) -> Self {
        assert!(mean_duration_steps > 0.0);
        SessionPool {
            mean_duration_steps,
            remaining: Vec::new(),
        }
    }

    /// Advance one step with `arrivals` new sessions; returns the number of
    /// active sessions after aging.
    pub fn step<R: Rng + ?Sized>(&mut self, arrivals: u64, rng: &mut R) -> usize {
        for r in self.remaining.iter_mut() {
            *r -= 1.0;
        }
        self.remaining.retain(|&r| r > 0.0);
        for _ in 0..arrivals {
            self.remaining
                .push(exponential(self.mean_duration_steps, rng));
        }
        self.remaining.len()
    }

    /// Currently active sessions.
    pub fn active(&self) -> usize {
        self.remaining.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-1.0, &mut rng), 0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(4.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn mmpp_stationary_rate_formula() {
        let m = Mmpp2::new(2.0, 20.0, 0.1, 0.3);
        let expect = 2.0 * 0.75 + 20.0 * 0.25;
        assert!((m.stationary_rate() - expect).abs() < 1e-12);
    }

    #[test]
    fn mmpp_empirical_rate_matches_stationary() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut m = Mmpp2::new(1.0, 15.0, 0.05, 0.2);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| m.step(&mut rng)).sum();
        let rate = total as f64 / n as f64;
        let expect = m.stationary_rate();
        assert!(
            (rate - expect).abs() < expect * 0.1,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Index of dispersion (var/mean) should exceed 1 for MMPP.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut m = Mmpp2::new(1.0, 30.0, 0.02, 0.1);
        let samples: Vec<f64> = (0..50_000).map(|_| m.step(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(var / mean > 2.0, "dispersion {}", var / mean);
    }

    #[test]
    fn session_pool_reaches_littles_law_level() {
        // M/G/∞: E[active] = λ · E[S].
        let mut rng = SmallRng::seed_from_u64(6);
        let mut pool = SessionPool::new(10.0);
        let lambda = 5.0;
        // Warm up.
        for _ in 0..200 {
            pool.step(poisson(lambda, &mut rng), &mut rng);
        }
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| pool.step(poisson(lambda, &mut rng), &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        let expect = lambda * 10.0;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn session_pool_drains_without_arrivals() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut pool = SessionPool::new(5.0);
        pool.step(100, &mut rng);
        assert_eq!(pool.active(), 100);
        for _ in 0..200 {
            pool.step(0, &mut rng);
        }
        assert_eq!(pool.active(), 0);
    }
}
