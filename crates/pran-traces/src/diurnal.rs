//! Diurnal load profiles per cell class.
//!
//! The multiplexing argument rests on cells peaking at *different times*:
//! office cells peak mid-day, residential cells in the evening, transport
//! cells at the commute humps. Each class gets a smooth 24-hour profile
//! built from Gaussian bumps over a base load; profiles are normalized to
//! peak at 1.0 so they compose with a per-cell peak-utilization scale.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Land-use class of a cell site, determining its daily rhythm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellClass {
    /// Homes: light daytime, strong evening peak.
    Residential,
    /// Business district: strong 9–17 plateau, dead at night.
    Office,
    /// Stations/highways: sharp morning and evening commute humps.
    Transport,
    /// Stadiums/nightlife: late-evening spikes, quiet otherwise.
    Entertainment,
}

impl CellClass {
    /// All classes.
    pub fn all() -> [CellClass; 4] {
        [
            CellClass::Residential,
            CellClass::Office,
            CellClass::Transport,
            CellClass::Entertainment,
        ]
    }
}

impl fmt::Display for CellClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CellClass::Residential => "residential",
            CellClass::Office => "office",
            CellClass::Transport => "transport",
            CellClass::Entertainment => "entertainment",
        })
    }
}

/// One Gaussian activity bump: `amp · exp(−(h−center)²/2σ²)`, wrapping
/// around midnight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Bump {
    center: f64,
    sigma: f64,
    amp: f64,
}

impl Bump {
    fn eval(&self, hour: f64) -> f64 {
        // Wrap-around distance on the 24 h circle.
        let d = (hour - self.center).rem_euclid(24.0);
        let dist = d.min(24.0 - d);
        self.amp * (-(dist * dist) / (2.0 * self.sigma * self.sigma)).exp()
    }
}

/// A smooth 24-hour load profile normalized to peak at 1.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    base: f64,
    bumps: Vec<Bump>,
    norm: f64,
}

impl DiurnalProfile {
    fn build(base: f64, bumps: Vec<Bump>) -> Self {
        let mut p = DiurnalProfile {
            base,
            bumps,
            norm: 1.0,
        };
        // Normalize to a peak of exactly 1.0 (sampled on a fine grid).
        let peak = (0..2400)
            .map(|i| p.raw(i as f64 / 100.0))
            .fold(0.0f64, f64::max);
        p.norm = 1.0 / peak;
        p
    }

    fn raw(&self, hour: f64) -> f64 {
        self.base + self.bumps.iter().map(|b| b.eval(hour)).sum::<f64>()
    }

    /// Normalized load at an hour-of-day in `[0, 24)`.
    pub fn at(&self, hour: f64) -> f64 {
        self.raw(hour.rem_euclid(24.0)) * self.norm
    }

    /// The canonical profile of a cell class.
    pub fn for_class(class: CellClass) -> Self {
        match class {
            CellClass::Residential => Self::build(
                0.12,
                vec![
                    Bump {
                        center: 7.5,
                        sigma: 1.2,
                        amp: 0.35,
                    },
                    Bump {
                        center: 20.5,
                        sigma: 2.4,
                        amp: 1.0,
                    },
                    Bump {
                        center: 12.5,
                        sigma: 1.5,
                        amp: 0.25,
                    },
                ],
            ),
            CellClass::Office => Self::build(
                0.05,
                vec![
                    Bump {
                        center: 10.5,
                        sigma: 1.8,
                        amp: 0.9,
                    },
                    Bump {
                        center: 14.5,
                        sigma: 1.8,
                        amp: 1.0,
                    },
                ],
            ),
            CellClass::Transport => Self::build(
                0.08,
                vec![
                    Bump {
                        center: 8.0,
                        sigma: 0.9,
                        amp: 1.0,
                    },
                    Bump {
                        center: 18.0,
                        sigma: 1.1,
                        amp: 0.95,
                    },
                    Bump {
                        center: 13.0,
                        sigma: 2.5,
                        amp: 0.3,
                    },
                ],
            ),
            CellClass::Entertainment => Self::build(
                0.06,
                vec![
                    Bump {
                        center: 21.5,
                        sigma: 1.6,
                        amp: 1.0,
                    },
                    Bump {
                        center: 12.5,
                        sigma: 1.2,
                        amp: 0.3,
                    },
                ],
            ),
        }
    }

    /// Hour at which the profile peaks (granularity 0.01 h).
    pub fn peak_hour(&self) -> f64 {
        let mut best = (0.0, f64::MIN);
        for i in 0..2400 {
            let h = i as f64 / 100.0;
            let v = self.at(h);
            if v > best.1 {
                best = (h, v);
            }
        }
        best.0
    }

    /// Mean load over the day (granularity 0.01 h).
    pub fn daily_mean(&self) -> f64 {
        (0..2400).map(|i| self.at(i as f64 / 100.0)).sum::<f64>() / 2400.0
    }

    /// Peak-to-mean ratio.
    pub fn peak_to_mean(&self) -> f64 {
        1.0 / self.daily_mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_normalized_to_unit_peak() {
        for class in CellClass::all() {
            let p = DiurnalProfile::for_class(class);
            let peak = (0..2400)
                .map(|i| p.at(i as f64 / 100.0))
                .fold(0.0f64, f64::max);
            assert!((peak - 1.0).abs() < 1e-9, "{class}: peak {peak}");
        }
    }

    #[test]
    fn profiles_stay_in_unit_interval() {
        for class in CellClass::all() {
            let p = DiurnalProfile::for_class(class);
            for i in 0..2400 {
                let v = p.at(i as f64 / 100.0);
                assert!((0.0..=1.0 + 1e-9).contains(&v), "{class} at {i}: {v}");
            }
        }
    }

    #[test]
    fn classes_peak_at_characteristic_hours() {
        let res = DiurnalProfile::for_class(CellClass::Residential).peak_hour();
        assert!((18.0..23.0).contains(&res), "residential peak {res}");
        let off = DiurnalProfile::for_class(CellClass::Office).peak_hour();
        assert!((9.0..17.0).contains(&off), "office peak {off}");
        let ent = DiurnalProfile::for_class(CellClass::Entertainment).peak_hour();
        assert!(ent >= 20.0, "entertainment peak {ent}");
    }

    #[test]
    fn office_and_residential_anticorrelated_at_key_hours() {
        let res = DiurnalProfile::for_class(CellClass::Residential);
        let off = DiurnalProfile::for_class(CellClass::Office);
        // At 11:00 office ≫ residential; at 21:00 the reverse.
        assert!(off.at(11.0) > 2.0 * res.at(11.0) * 0.8);
        assert!(res.at(21.0) > 2.0 * off.at(21.0) * 0.8);
    }

    #[test]
    fn transport_has_two_commute_humps() {
        let p = DiurnalProfile::for_class(CellClass::Transport);
        let morning = p.at(8.0);
        let midday = p.at(12.5);
        let evening = p.at(18.0);
        assert!(morning > midday && evening > midday, "no double hump");
    }

    #[test]
    fn peak_to_mean_substantial() {
        // The multiplexing argument needs PTM well above 1.
        for class in CellClass::all() {
            let ptm = DiurnalProfile::for_class(class).peak_to_mean();
            assert!(ptm > 1.8, "{class}: PTM {ptm}");
            assert!(ptm < 12.0, "{class}: implausible PTM {ptm}");
        }
    }

    #[test]
    fn wraps_around_midnight() {
        let p = DiurnalProfile::for_class(CellClass::Entertainment);
        assert!((p.at(23.9) - p.at(-0.1)).abs() < 1e-9);
        assert!(p.at(0.5) > 0.0);
    }
}
