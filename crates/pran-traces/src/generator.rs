//! Trace synthesis: diurnal envelope × correlated noise × flash crowds.
//!
//! The generator composes, per cell and step:
//!
//! 1. the class diurnal envelope scaled by the cell's peak utilization;
//! 2. a *regional* multiplicative factor shared by all cells (weather, big
//!    events, outages elsewhere) — this is what keeps cells from being
//!    independent and caps the multiplexing gain realistically;
//! 3. idiosyncratic per-cell noise (AR(1)-smoothed);
//! 4. optional flash crowds: time-windowed load boosts centered at a point,
//!    decaying with distance.
//!
//! All randomness flows from a caller-supplied seed, so traces are fully
//! reproducible.

use serde::{Deserialize, Serialize};

use crate::diurnal::CellClass;
use crate::trace::{Point, Trace};

/// A flash-crowd event: cells near `epicenter` see up to `boost` extra
/// utilization during `[start_s, start_s + duration_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Center of the event.
    pub epicenter: Point,
    /// Meters over which the boost decays to `e⁻¹`.
    pub radius_m: f64,
    /// Event start, seconds from trace start.
    pub start_s: f64,
    /// Event duration in seconds.
    pub duration_s: f64,
    /// Peak added utilization at the epicenter, in `[0, 1]`.
    pub boost: f64,
}

impl FlashCrowd {
    /// Added utilization for a cell at `pos` at absolute time `t_s`.
    pub fn boost_at(&self, pos: Point, t_s: f64) -> f64 {
        if t_s < self.start_s || t_s >= self.start_s + self.duration_s {
            return 0.0;
        }
        // Ramp up/down over the first/last 10% of the window.
        let progress = (t_s - self.start_s) / self.duration_s;
        let ramp = (progress / 0.1).min((1.0 - progress) / 0.1).min(1.0);
        let d = self.epicenter.distance(pos);
        self.boost * ramp * (-(d / self.radius_m).powi(2)).exp()
    }
}

/// Mix of cell classes, as relative weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Relative weight of residential cells.
    pub residential: f64,
    /// Relative weight of office cells.
    pub office: f64,
    /// Relative weight of transport cells.
    pub transport: f64,
    /// Relative weight of entertainment cells.
    pub entertainment: f64,
}

impl ClassMix {
    /// The default urban mix.
    pub fn urban() -> Self {
        ClassMix {
            residential: 0.4,
            office: 0.3,
            transport: 0.2,
            entertainment: 0.1,
        }
    }

    /// Pick a class for fraction `u ∈ [0, 1)` of the weight mass.
    pub fn pick(&self, u: f64) -> CellClass {
        let total = self.residential + self.office + self.transport + self.entertainment;
        assert!(total > 0.0, "class mix must have positive weight");
        let x = u * total;
        if x < self.residential {
            CellClass::Residential
        } else if x < self.residential + self.office {
            CellClass::Office
        } else if x < self.residential + self.office + self.transport {
            CellClass::Transport
        } else {
            CellClass::Entertainment
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of cells.
    pub num_cells: usize,
    /// Side of the square deployment area, meters.
    pub area_side_m: f64,
    /// Sampling step, seconds.
    pub step_seconds: f64,
    /// Trace duration, seconds.
    pub duration_seconds: f64,
    /// Mix of cell classes.
    pub class_mix: ClassMix,
    /// Range of per-cell peak utilization `[lo, hi] ⊂ (0, 1]`.
    pub peak_utilization: (f64, f64),
    /// Std-dev of the shared regional factor (multiplicative, around 1).
    pub regional_sigma: f64,
    /// Std-dev of per-cell idiosyncratic noise (additive utilization).
    pub cell_noise_sigma: f64,
    /// AR(1) smoothing coefficient for both noise processes, `[0, 1)`.
    pub noise_smoothing: f64,
    /// Flash-crowd events to inject.
    pub flash_crowds: Vec<FlashCrowd>,
    /// Weekend damping: multiplier applied to office/transport cells (and
    /// its complement boost to residential/entertainment) on days 5 and 6
    /// of each week. 1.0 disables weekly seasonality.
    pub weekend_factor: f64,
    /// RNG seed — traces are fully reproducible.
    pub seed: u64,
}

impl TraceConfig {
    /// A day of 50 cells at 1-minute resolution — the E3/E4 default.
    pub fn default_day(num_cells: usize, seed: u64) -> Self {
        TraceConfig {
            num_cells,
            area_side_m: 10_000.0,
            step_seconds: 60.0,
            duration_seconds: 24.0 * 3600.0,
            class_mix: ClassMix::urban(),
            peak_utilization: (0.5, 1.0),
            regional_sigma: 0.08,
            cell_noise_sigma: 0.05,
            noise_smoothing: 0.9,
            flash_crowds: Vec::new(),
            weekend_factor: 1.0,
            seed,
        }
    }
}

/// Generate a trace from a configuration.
///
/// A thin batch wrapper over [`TraceStream`](crate::TraceStream): the stream
/// owns the cell-draw and per-step RNG order, so incremental (resident soak)
/// and batch generation cannot drift apart.
pub fn generate(cfg: &TraceConfig) -> Trace {
    let gen_span = pran_telemetry::trace::span("traces.generate");
    let mut stream = crate::stream::TraceStream::new(cfg);

    let steps = (cfg.duration_seconds / cfg.step_seconds).round() as usize;
    let mut samples = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut row = Vec::with_capacity(cfg.num_cells);
        stream.next_step_into(&mut row);
        samples.push(row);
    }

    let trace = Trace {
        step_seconds: cfg.step_seconds,
        cells: stream.cells().to_vec(),
        samples,
    };
    debug_assert!(trace.validate().is_ok());
    gen_span.finish_with(&[
        ("cells", cfg.num_cells.into()),
        ("steps", steps.into()),
        ("seed", cfg.seed.into()),
        ("flash_crowds", cfg.flash_crowds.len().into()),
    ]);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_validates() {
        let t = generate(&TraceConfig::default_day(20, 42));
        assert!(t.validate().is_ok());
        assert_eq!(t.num_cells(), 20);
        assert_eq!(t.num_steps(), 1440);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&TraceConfig::default_day(10, 7));
        let b = generate(&TraceConfig::default_day(10, 7));
        assert_eq!(a, b);
        let c = generate(&TraceConfig::default_day(10, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn multiplexing_gain_materializes() {
        // Mixed-class cells must pool better than 1:1 but far from
        // independence (regional factor correlates them).
        let t = generate(&TraceConfig::default_day(60, 3));
        let gain = t.multiplexing_gain();
        assert!(gain > 1.2, "gain {gain} too small — profiles too aligned");
        assert!(gain < 4.0, "gain {gain} implausibly large");
    }

    #[test]
    fn class_mix_pick_respects_weights() {
        let mix = ClassMix {
            residential: 1.0,
            office: 0.0,
            transport: 0.0,
            entertainment: 0.0,
        };
        for i in 0..10 {
            assert_eq!(mix.pick(i as f64 / 10.0), CellClass::Residential);
        }
        let mix = ClassMix::urban();
        assert_eq!(mix.pick(0.0), CellClass::Residential);
        assert_eq!(mix.pick(0.99), CellClass::Entertainment);
    }

    #[test]
    fn flash_crowd_boosts_nearby_cells_during_window() {
        let fc = FlashCrowd {
            epicenter: Point { x: 0.0, y: 0.0 },
            radius_m: 1000.0,
            start_s: 100.0,
            duration_s: 1000.0,
            boost: 0.5,
        };
        let near = Point { x: 100.0, y: 0.0 };
        let far = Point { x: 5000.0, y: 0.0 };
        let mid_window = 600.0;
        assert!(fc.boost_at(near, mid_window) > 0.4);
        assert!(fc.boost_at(far, mid_window) < 0.01);
        assert_eq!(fc.boost_at(near, 50.0), 0.0, "before window");
        assert_eq!(fc.boost_at(near, 1200.0), 0.0, "after window");
    }

    #[test]
    fn flash_crowd_ramps() {
        let fc = FlashCrowd {
            epicenter: Point { x: 0.0, y: 0.0 },
            radius_m: 1000.0,
            start_s: 0.0,
            duration_s: 1000.0,
            boost: 1.0,
        };
        let p = Point { x: 0.0, y: 0.0 };
        assert!(fc.boost_at(p, 10.0) < fc.boost_at(p, 500.0));
        assert!(fc.boost_at(p, 990.0) < fc.boost_at(p, 500.0));
    }

    #[test]
    fn flash_crowd_shows_up_in_trace() {
        let mut cfg = TraceConfig::default_day(30, 11);
        // A mid-day crowd covering the whole area.
        cfg.flash_crowds.push(FlashCrowd {
            epicenter: Point {
                x: 5000.0,
                y: 5000.0,
            },
            radius_m: 20_000.0,
            start_s: 12.0 * 3600.0,
            duration_s: 2.0 * 3600.0,
            boost: 0.8,
        });
        let with = generate(&cfg);
        cfg.flash_crowds.clear();
        let without = generate(&cfg);
        // Aggregate during the window must be clearly higher.
        let idx = (12.5 * 3600.0 / 60.0) as usize;
        let agg_with: f64 = with.samples[idx].iter().sum();
        let agg_without: f64 = without.samples[idx].iter().sum();
        assert!(
            agg_with > agg_without + 0.3 * 30.0 * 0.5,
            "crowd invisible: {agg_with} vs {agg_without}"
        );
    }

    #[test]
    fn office_cells_follow_office_rhythm() {
        let mut cfg = TraceConfig::default_day(8, 5);
        cfg.class_mix = ClassMix {
            residential: 0.0,
            office: 1.0,
            transport: 0.0,
            entertainment: 0.0,
        };
        cfg.cell_noise_sigma = 0.0;
        cfg.regional_sigma = 0.0;
        let t = generate(&cfg);
        let agg = t.aggregate_series();
        let noon = agg[(12.0 * 60.0) as usize];
        let night = agg[(3.0 * 60.0) as usize];
        assert!(noon > 4.0 * night, "noon {noon} vs night {night}");
    }

    #[test]
    fn weekend_empties_offices_and_boosts_homes() {
        let mut cfg = TraceConfig::default_day(8, 31);
        cfg.duration_seconds = 7.0 * 86_400.0; // a full week
        cfg.step_seconds = 3600.0;
        cfg.weekend_factor = 0.3;
        cfg.cell_noise_sigma = 0.0;
        cfg.regional_sigma = 0.0;
        cfg.class_mix = ClassMix {
            residential: 0.5,
            office: 0.5,
            transport: 0.0,
            entertainment: 0.0,
        };
        let t = generate(&cfg);
        // Compare Wednesday (day 2) noon vs Saturday (day 5) noon.
        let wed = (2 * 24 + 12) as usize;
        let sat = (5 * 24 + 12) as usize;
        let office_cells: Vec<usize> = t
            .cells
            .iter()
            .filter(|c| c.class == CellClass::Office)
            .map(|c| c.id)
            .collect();
        let res_cells: Vec<usize> = t
            .cells
            .iter()
            .filter(|c| c.class == CellClass::Residential)
            .map(|c| c.id)
            .collect();
        assert!(!office_cells.is_empty() && !res_cells.is_empty());
        let avg = |step: usize, ids: &[usize]| {
            ids.iter().map(|&c| t.samples[step][c]).sum::<f64>() / ids.len() as f64
        };
        assert!(
            avg(sat, &office_cells) < 0.5 * avg(wed, &office_cells),
            "offices must empty out on Saturday"
        );
        assert!(
            avg(sat, &res_cells) > avg(wed, &res_cells),
            "homes must pick up weekend load"
        );
    }

    #[test]
    fn weekly_seasonality_off_by_default() {
        let a = generate(&TraceConfig::default_day(5, 77));
        let mut cfg = TraceConfig::default_day(5, 77);
        cfg.weekend_factor = 1.0;
        let b = generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn regional_factor_induces_positive_correlation() {
        let mut cfg = TraceConfig::default_day(2, 21);
        cfg.class_mix = ClassMix {
            residential: 1.0,
            office: 0.0,
            transport: 0.0,
            entertainment: 0.0,
        };
        cfg.regional_sigma = 0.25;
        cfg.cell_noise_sigma = 0.02;
        let t = generate(&cfg);
        assert!(t.correlation(0, 1) > 0.5, "corr {}", t.correlation(0, 1));
    }
}
