//! `pran-traces` — synthetic per-cell load traces.
//!
//! PRAN's evaluation relied on operator traces that are proprietary; this
//! crate is the documented substitute (see DESIGN.md). It generates per-cell
//! PRB-utilization time series whose *variability structure* — diurnal
//! class rhythms, imperfect inter-cell correlation, short-timescale
//! burstiness, flash crowds — is exactly what the multiplexing-gain and
//! placement experiments consume:
//!
//! * [`diurnal`] — per-class 24 h envelopes (office vs residential vs
//!   transport vs entertainment);
//! * [`arrivals`] — Poisson / MMPP-2 arrival processes and an M/G/∞
//!   session pool for second-scale burstiness;
//! * [`trace`] — the [`Trace`] container plus the pooling statistics
//!   (sum-of-peaks, peak-of-sum, multiplexing gain) and JSON/CSV I/O;
//! * [`generator`] — composition of all of the above with reproducible
//!   seeding and flash-crowd injection;
//! * [`stream`] — the incremental twin of [`generate`], yielding rows one
//!   step at a time (bit-exact) for resident soak services.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod diurnal;
pub mod generator;
pub mod stream;
pub mod trace;

pub use arrivals::{exponential, poisson, standard_normal, Mmpp2, SessionPool};
pub use diurnal::{CellClass, DiurnalProfile};
pub use generator::{generate, ClassMix, FlashCrowd, TraceConfig};
pub use stream::TraceStream;
pub use trace::{pearson, CellMeta, Point, Trace};
