//! Incremental trace generation for resident (long-running) simulations.
//!
//! [`TraceStream`] produces the *same* utilization rows as
//! [`generate`](crate::generate) — bit-exact, same RNG draw order — but one
//! step at a time into a caller-owned buffer, so a soak service can run
//! indefinitely without materializing a whole [`Trace`](crate::Trace) up
//! front. `generate` itself is a thin wrapper over this type, which is what
//! keeps the two paths from drifting.
//!
//! The diurnal/weekly envelopes depend only on wall-clock time, so a stream
//! can run arbitrarily far past `cfg.duration_seconds`; the duration only
//! matters to the batch wrapper.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::standard_normal;
use crate::diurnal::{CellClass, DiurnalProfile};
use crate::generator::TraceConfig;
use crate::trace::{CellMeta, Point};

const CLASSES: [CellClass; 4] = [
    CellClass::Residential,
    CellClass::Office,
    CellClass::Transport,
    CellClass::Entertainment,
];

/// Streaming twin of [`generate`](crate::generate): yields utilization rows
/// one step at a time, bit-exact with the batch generator.
#[derive(Debug, Clone)]
pub struct TraceStream {
    cfg: TraceConfig,
    cells: Vec<CellMeta>,
    class_profiles: Vec<DiurnalProfile>,
    class_of: Vec<usize>,
    rng: SmallRng,
    regional: f64,
    cell_noise: Vec<f64>,
    step: usize,
}

impl TraceStream {
    /// Build a stream: draws the per-cell metadata (classes, positions,
    /// peaks) exactly as the batch generator does, then parks the RNG at
    /// the first step.
    pub fn new(cfg: &TraceConfig) -> Self {
        assert!(cfg.num_cells > 0, "need at least one cell");
        assert!(cfg.step_seconds > 0.0 && cfg.duration_seconds > 0.0);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Cells: positions, classes, scales — identical draw order to
        // `generate`.
        let cells: Vec<CellMeta> = (0..cfg.num_cells)
            .map(|id| {
                let class = cfg.class_mix.pick(rng.gen::<f64>());
                let position = Point {
                    x: rng.gen_range(0.0..cfg.area_side_m),
                    y: rng.gen_range(0.0..cfg.area_side_m),
                };
                let peak_utilization =
                    rng.gen_range(cfg.peak_utilization.0..=cfg.peak_utilization.1);
                CellMeta {
                    id,
                    class,
                    position,
                    peak_utilization,
                }
            })
            .collect();

        // Memoized per-class profiles (shared by every cell of a class).
        let class_profiles: Vec<DiurnalProfile> = CLASSES
            .iter()
            .map(|&class| DiurnalProfile::for_class(class))
            .collect();
        let class_of: Vec<usize> = cells
            .iter()
            .map(|meta| CLASSES.iter().position(|&k| k == meta.class).unwrap())
            .collect();

        TraceStream {
            cfg: cfg.clone(),
            class_profiles,
            class_of,
            rng,
            regional: 0.0,
            cell_noise: vec![0.0; cfg.num_cells],
            step: 0,
            cells,
        }
    }

    /// Per-cell metadata, in cell-id order.
    pub fn cells(&self) -> &[CellMeta] {
        &self.cells
    }

    /// Number of cells per row.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Index of the next step this stream will produce.
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// Sampling step in seconds (from the config).
    pub fn step_seconds(&self) -> f64 {
        self.cfg.step_seconds
    }

    /// Produce the next step's utilization row into `row` (cleared first).
    /// Allocation-free once `row` has capacity for `num_cells` values.
    pub fn next_step_into(&mut self, row: &mut Vec<f64>) {
        let cfg = &self.cfg;
        let a = cfg.noise_smoothing;
        let innov_scale = (1.0 - a * a).sqrt();

        let t_s = self.step as f64 * cfg.step_seconds;
        let hour = (t_s / 3600.0) % 24.0;
        let day = ((t_s / 86_400.0) as u64) % 7;
        let weekend = day >= 5;
        self.regional =
            a * self.regional + innov_scale * cfg.regional_sigma * standard_normal(&mut self.rng);
        let regional_factor = (1.0 + self.regional).max(0.0);

        let mut envelope_at: [f64; 4] = [0.0; 4];
        let mut weekly_of: [f64; 4] = [1.0; 4];
        for (k, &class) in CLASSES.iter().enumerate() {
            envelope_at[k] = self.class_profiles[k].at(hour);
            // Weekly seasonality: offices/commutes empty out on weekends,
            // homes and venues pick up part of the slack.
            weekly_of[k] = if weekend && cfg.weekend_factor != 1.0 {
                match class {
                    CellClass::Office | CellClass::Transport => cfg.weekend_factor,
                    CellClass::Residential | CellClass::Entertainment => {
                        1.0 + (1.0 - cfg.weekend_factor) * 0.5
                    }
                }
            } else {
                1.0
            };
        }

        row.clear();
        row.reserve(self.cells.len());
        for (c, meta) in self.cells.iter().enumerate() {
            self.cell_noise[c] = a * self.cell_noise[c]
                + innov_scale * cfg.cell_noise_sigma * standard_normal(&mut self.rng);
            let k = self.class_of[c];
            let envelope = envelope_at[k] * meta.peak_utilization * weekly_of[k];
            let crowd: f64 = cfg
                .flash_crowds
                .iter()
                .map(|fc| fc.boost_at(meta.position, t_s))
                .sum();
            let u = (envelope * regional_factor + self.cell_noise[c] + crowd).clamp(0.0, 1.0);
            row.push(u);
        }
        self.step += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn stream_matches_batch_generator_bit_exactly() {
        let mut cfg = TraceConfig::default_day(24, 91);
        cfg.weekend_factor = 0.4;
        cfg.duration_seconds = 2.0 * 86_400.0;
        cfg.flash_crowds.push(crate::FlashCrowd {
            epicenter: Point {
                x: 4000.0,
                y: 6000.0,
            },
            radius_m: 3000.0,
            start_s: 10.0 * 3600.0,
            duration_s: 3600.0,
            boost: 0.6,
        });
        let batch = generate(&cfg);
        let mut stream = TraceStream::new(&cfg);
        assert_eq!(stream.cells(), batch.cells.as_slice());
        let mut row = Vec::new();
        for (t, want) in batch.samples.iter().enumerate() {
            assert_eq!(stream.step_index(), t);
            stream.next_step_into(&mut row);
            assert_eq!(&row, want, "row {t} diverged");
        }
    }

    #[test]
    fn stream_runs_past_configured_duration() {
        let cfg = TraceConfig::default_day(4, 3);
        let steps = (cfg.duration_seconds / cfg.step_seconds).round() as usize;
        let mut stream = TraceStream::new(&cfg);
        let mut row = Vec::new();
        for _ in 0..steps + 10 {
            stream.next_step_into(&mut row);
            assert!(row.iter().all(|u| (0.0..=1.0).contains(u)));
        }
        assert_eq!(stream.step_index(), steps + 10);
    }

    #[test]
    fn next_step_into_reuses_buffer_capacity() {
        let cfg = TraceConfig::default_day(16, 5);
        let mut stream = TraceStream::new(&cfg);
        let mut row = Vec::with_capacity(16);
        let ptr = row.as_ptr();
        for _ in 0..50 {
            stream.next_step_into(&mut row);
        }
        assert_eq!(row.as_ptr(), ptr, "row buffer must not reallocate");
    }
}
