//! The trace data type: per-cell load time series plus statistics.
//!
//! A [`Trace`] holds utilization samples in `[0, 1]` (fraction of the PRB
//! grid in use) for every cell at a fixed step. The statistics here are the
//! quantities PRAN's multiplexing analysis is built from: per-cell peaks,
//! the peak of the aggregate, and the gain of pooling
//! (`Σ peakᵢ / peak(Σ)`).

use serde::{Deserialize, Serialize};

use crate::diurnal::CellClass;

/// A point in the deployment plane, meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East coordinate, meters.
    pub x: f64,
    /// North coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Static description of one cell in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMeta {
    /// Dense id, equal to the cell's column index.
    pub id: usize,
    /// Land-use class driving its diurnal profile.
    pub class: CellClass,
    /// Site position.
    pub position: Point,
    /// Peak utilization scale in `(0, 1]` (how hot this cell runs at its
    /// busiest hour).
    pub peak_utilization: f64,
}

/// Per-cell load time series at a fixed sampling step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Seconds between consecutive samples.
    pub step_seconds: f64,
    /// Cell descriptors; `cells[i].id == i`.
    pub cells: Vec<CellMeta>,
    /// `samples[t][c]` = utilization of cell `c` at step `t`, in `[0, 1]`.
    pub samples: Vec<Vec<f64>>,
}

impl Trace {
    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of time steps.
    pub fn num_steps(&self) -> usize {
        self.samples.len()
    }

    /// Duration covered in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.step_seconds * self.num_steps() as f64
    }

    /// Validate structural invariants (row widths, value ranges).
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.cells.iter().enumerate() {
            if c.id != i {
                return Err(format!("cell {i} has id {}", c.id));
            }
        }
        for (t, row) in self.samples.iter().enumerate() {
            if row.len() != self.cells.len() {
                return Err(format!(
                    "row {t} has {} cells, expected {}",
                    row.len(),
                    self.cells.len()
                ));
            }
            for (c, &v) in row.iter().enumerate() {
                if !(0.0..=1.0).contains(&v) || v.is_nan() {
                    return Err(format!("sample[{t}][{c}] = {v} out of [0,1]"));
                }
            }
        }
        Ok(())
    }

    /// Time series of one cell.
    pub fn cell_series(&self, cell: usize) -> Vec<f64> {
        self.samples.iter().map(|row| row[cell]).collect()
    }

    /// Peak utilization of one cell.
    pub fn cell_peak(&self, cell: usize) -> f64 {
        self.samples.iter().map(|row| row[cell]).fold(0.0, f64::max)
    }

    /// Mean utilization of one cell.
    pub fn cell_mean(&self, cell: usize) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|row| row[cell]).sum::<f64>() / self.num_steps() as f64
    }

    /// Peak-to-mean ratio of one cell (∞-safe: 0 when the cell is silent).
    pub fn cell_peak_to_mean(&self, cell: usize) -> f64 {
        let mean = self.cell_mean(cell);
        if mean == 0.0 {
            0.0
        } else {
            self.cell_peak(cell) / mean
        }
    }

    /// Aggregate utilization (sum over cells) per step.
    pub fn aggregate_series(&self) -> Vec<f64> {
        self.samples.iter().map(|row| row.iter().sum()).collect()
    }

    /// Sum of per-cell peaks — the provisioning level of per-cell dedicated
    /// hardware.
    pub fn sum_of_peaks(&self) -> f64 {
        (0..self.num_cells()).map(|c| self.cell_peak(c)).sum()
    }

    /// Peak of the aggregate — the provisioning level of a shared pool.
    pub fn peak_of_sum(&self) -> f64 {
        self.aggregate_series().iter().copied().fold(0.0, f64::max)
    }

    /// Statistical multiplexing gain `Σ peakᵢ / peak(Σ) ≥ 1`.
    pub fn multiplexing_gain(&self) -> f64 {
        let pos = self.peak_of_sum();
        if pos == 0.0 {
            1.0
        } else {
            self.sum_of_peaks() / pos
        }
    }

    /// Resource saving of pooling, in `[0, 1)`:
    /// `1 − peak(Σ)/Σ peakᵢ`.
    pub fn pooling_saving(&self) -> f64 {
        let sop = self.sum_of_peaks();
        if sop == 0.0 {
            0.0
        } else {
            1.0 - self.peak_of_sum() / sop
        }
    }

    /// Import from the CSV layout [`Trace::to_csv`] writes.
    ///
    /// CSV carries only the samples; cell metadata (class, position, peak
    /// scale) is not representable there, so imported cells get documented
    /// defaults (`Residential`, origin, peak 1.0). Use JSON for lossless
    /// round-trips.
    pub fn from_csv(csv: &str, step_seconds: f64) -> Result<Trace, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let columns: Vec<&str> = header.split(',').collect();
        if columns.first() != Some(&"t") {
            return Err(format!("unexpected first column {:?}", columns.first()));
        }
        let num_cells = columns.len() - 1;
        if num_cells == 0 {
            return Err("no cell columns".into());
        }
        let mut samples = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != columns.len() {
                return Err(format!(
                    "line {}: {} fields, expected {}",
                    lineno + 2,
                    fields.len(),
                    columns.len()
                ));
            }
            let row: Result<Vec<f64>, String> = fields[1..]
                .iter()
                .map(|f| {
                    f.trim()
                        .parse::<f64>()
                        .map_err(|e| format!("line {}: {e}", lineno + 2))
                })
                .collect();
            samples.push(row?);
        }
        let cells = (0..num_cells)
            .map(|id| CellMeta {
                id,
                class: CellClass::Residential,
                position: Point { x: 0.0, y: 0.0 },
                peak_utilization: 1.0,
            })
            .collect();
        let trace = Trace {
            step_seconds,
            cells,
            samples,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Pearson correlation between two cells' series.
    pub fn correlation(&self, a: usize, b: usize) -> f64 {
        let sa = self.cell_series(a);
        let sb = self.cell_series(b);
        pearson(&sa, &sb)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserialize from JSON (validated).
    pub fn from_json(s: &str) -> Result<Trace, String> {
        let t: Trace = serde_json::from_str(s).map_err(|e| e.to_string())?;
        t.validate()?;
        Ok(t)
    }

    /// Export as CSV: header `t,cell0,cell1,...`, one row per step.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t");
        for c in &self.cells {
            out.push_str(&format!(",cell{}", c.id));
        }
        out.push('\n');
        for (t, row) in self.samples.iter().enumerate() {
            out.push_str(&format!("{:.1}", t as f64 * self.step_seconds));
            for v in row {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Pearson correlation of two equal-length series (0 for degenerate input).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> Trace {
        // Two cells with perfectly complementary loads.
        let cells = vec![
            CellMeta {
                id: 0,
                class: CellClass::Office,
                position: Point { x: 0.0, y: 0.0 },
                peak_utilization: 1.0,
            },
            CellMeta {
                id: 1,
                class: CellClass::Residential,
                position: Point { x: 1000.0, y: 0.0 },
                peak_utilization: 1.0,
            },
        ];
        let samples = vec![
            vec![1.0, 0.0],
            vec![0.8, 0.2],
            vec![0.2, 0.8],
            vec![0.0, 1.0],
        ];
        Trace {
            step_seconds: 3600.0,
            cells,
            samples,
        }
    }

    #[test]
    fn validate_accepts_good_trace() {
        assert!(toy_trace().validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut t = toy_trace();
        t.samples[1][0] = 1.5;
        assert!(t.validate().is_err());
        t.samples[1][0] = f64::NAN;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_ragged_rows() {
        let mut t = toy_trace();
        t.samples[2].pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn complementary_cells_give_factor_two_gain() {
        let t = toy_trace();
        assert_eq!(t.sum_of_peaks(), 2.0);
        assert_eq!(t.peak_of_sum(), 1.0);
        assert_eq!(t.multiplexing_gain(), 2.0);
        assert_eq!(t.pooling_saving(), 0.5);
    }

    #[test]
    fn perfectly_correlated_cells_give_no_gain() {
        let mut t = toy_trace();
        t.samples = vec![vec![0.5, 0.5], vec![1.0, 1.0], vec![0.2, 0.2]];
        assert!((t.multiplexing_gain() - 1.0).abs() < 1e-12);
        assert_eq!(t.pooling_saving(), 0.0);
    }

    #[test]
    fn correlation_signs() {
        let t = toy_trace();
        assert!(
            t.correlation(0, 1) < -0.9,
            "complementary cells anticorrelate"
        );
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[0.0, 5.0]), 0.0, "degenerate series");
    }

    #[test]
    fn peak_mean_math() {
        let t = toy_trace();
        assert_eq!(t.cell_peak(0), 1.0);
        assert_eq!(t.cell_mean(0), 0.5);
        assert_eq!(t.cell_peak_to_mean(0), 2.0);
    }

    #[test]
    fn json_roundtrip() {
        let t = toy_trace();
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_corrupt_values() {
        let t = toy_trace();
        let json = t.to_json().replace("0.8", "8.0");
        assert!(Trace::from_json(&json).is_err());
    }

    #[test]
    fn csv_shape() {
        let csv = toy_trace().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("t,cell0,cell1"));
        assert_eq!(lines[1].split(',').count(), 3);
    }

    #[test]
    fn csv_roundtrip_preserves_samples() {
        let t = toy_trace();
        let csv = t.to_csv();
        let back = Trace::from_csv(&csv, t.step_seconds).unwrap();
        assert_eq!(back.num_cells(), t.num_cells());
        assert_eq!(back.num_steps(), t.num_steps());
        for (a, b) in back
            .samples
            .iter()
            .flatten()
            .zip(t.samples.iter().flatten())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn csv_import_rejects_garbage() {
        assert!(Trace::from_csv("", 60.0).is_err());
        assert!(Trace::from_csv("x,cell0\n0,0.5", 60.0).is_err());
        assert!(Trace::from_csv("t,cell0\n0,notanumber", 60.0).is_err());
        assert!(
            Trace::from_csv("t,cell0\n0,0.5,0.7", 60.0).is_err(),
            "ragged row"
        );
        assert!(
            Trace::from_csv("t,cell0\n0,7.5", 60.0).is_err(),
            "out of range"
        );
    }

    #[test]
    fn point_distance() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert_eq!(a.distance(b), 5.0);
    }
}
