//! Failover: kill servers mid-day and measure recovery.
//!
//! Demonstrates PRAN's fast-failover claim end-to-end: a server dies, the
//! controller's centralized state makes re-placement a pure control-plane
//! operation, and the per-cell outage is detection + replan + migration —
//! tens of milliseconds, not the minutes a hardware RMA would take. The
//! example also runs *real* deadline-scheduled turbo decodes on a worker
//! pool shrunk by one "server" to show the compute-side effect.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use std::time::Duration;

use pran::phy::kernels::{turbo_decode, turbo_encode, QppInterleaver, SoftCodeword};
use pran::sched::realtime::executor::{DeadlineExecutor, Job};
use pran::sim::{FailureSpec, PoolConfig, PoolSimulator};
use pran::traces::{generate, TraceConfig};

fn main() {
    // ---- Part 1: simulated pool with injected failures ----
    let mut cfg = TraceConfig::default_day(24, 7);
    cfg.duration_seconds = 6.0 * 3600.0; // 6 busy hours
    cfg.step_seconds = 60.0;
    let trace = generate(&cfg);

    let mut pool_cfg = PoolConfig::default_eval(10);
    pool_cfg.epoch_steps = 10;
    let mut sim = PoolSimulator::new(trace, pool_cfg);

    // Two failures: one with recovery, one permanent.
    sim.inject_failure(FailureSpec {
        server: 2,
        at: Duration::from_secs(2 * 3600),
        recover_after: Some(Duration::from_secs(1800)),
    });
    sim.inject_failure(FailureSpec {
        server: 5,
        at: Duration::from_secs(4 * 3600),
        recover_after: None,
    });

    let report = sim.run();
    println!("== simulated failover ==");
    for f in &report.failovers {
        println!(
            "  server {} failed: {} cells displaced, {} re-placed, outage {:?} each",
            f.server, f.displaced, f.replaced, f.outage
        );
    }
    let m = &report.metrics;
    println!(
        "  day summary: {} tasks, {} lost to dead servers, miss ratio {:.4}%",
        m.tasks_total,
        m.tasks_lost,
        m.miss_ratio() * 100.0
    );
    if m.outages.count() > 0 {
        println!(
            "  outage distribution: mean {:?}, max {:?} over {} cell-outages",
            m.outages.mean(),
            m.outages.max(),
            m.outages.count()
        );
    }

    // ---- Part 2: real decode jobs on a shrinking worker pool ----
    println!("\n== real turbo decodes under worker loss ==");
    let k = 2048;
    let n_jobs = 64usize;
    let interleaver = QppInterleaver::for_block_size(k).expect("supported size");
    let message: Vec<u8> = (0..k).map(|i| ((i * 37) % 2) as u8).collect();
    let codeword = turbo_encode(&message);

    // Calibrate one decode on this machine (the kernels are unoptimized
    // reference implementations — see DESIGN.md scale note — so deadlines
    // are set relative to measured speed, not LTE wall-clock).
    let calibrate = {
        let soft = SoftCodeword::from_codeword(&codeword, 3.0);
        let start = std::time::Instant::now();
        let out = turbo_decode(&soft, &interleaver, 5);
        assert_eq!(out.bits, message);
        start.elapsed()
    };
    // Worker counts scale to this machine; on a single-core box the
    // comparison degenerates (time-slicing), which the output calls out.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (full, degraded) = if cores >= 2 {
        (cores, cores - 1)
    } else {
        (2, 1)
    };
    // Deadline sits between the full and degraded batch completion times,
    // so losing a worker turns a clean batch into misses (given real
    // hardware parallelism).
    let deadline = calibrate.mul_f64(n_jobs as f64 / (degraded as f64 + 0.5));
    println!(
        "  single decode (K={k}): {calibrate:?}; batch deadline {deadline:?}; {cores} hw cores"
    );
    if cores < 2 {
        println!("  (single-core machine: worker counts time-slice, so the");
        println!("   full vs degraded comparison below is illustrative only)");
    }

    for workers in [full, degraded] {
        let jobs: Vec<Job> = (0..n_jobs)
            .map(|id| {
                let soft = SoftCodeword::from_codeword(&codeword, 3.0);
                let il = QppInterleaver::for_block_size(k).expect("supported size");
                let expect = message.clone();
                Job {
                    id,
                    deadline,
                    work: Box::new(move || {
                        let out = turbo_decode(&soft, &il, 5);
                        assert_eq!(out.bits, expect, "decode corrupted");
                    }),
                }
            })
            .collect();
        let out = DeadlineExecutor::new(workers).run(jobs);
        println!(
            "  {} workers: {} decodes in {:?}, {} deadline misses",
            workers,
            n_jobs,
            out.elapsed,
            out.misses()
        );
    }
    println!("\n(losing a worker stretches the batch past the deadline —");
    println!(" exactly the capacity the placement layer must restore by");
    println!(" re-placing the failed server's cells)");
}
