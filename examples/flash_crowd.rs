//! Flash crowd: a stadium event hits four cells at 19:00 — watch the pool
//! absorb it.
//!
//! The paper's motivating scenario for pooling: dedicated per-cell hardware
//! must be sized for this spike *at every cell*; the pool only needs the
//! spike's *aggregate*. The example generates a 24-hour city trace with an
//! evening flash crowd, simulates the pool, and prints the server-usage
//! timeline plus the dedicated-vs-pooled provisioning comparison.
//!
//! ```sh
//! cargo run --example flash_crowd [num_cells] [seed]
//! ```

use std::time::Duration;

use pran::sched::placement::dimensioning::{
    dedicated_servers, pooled_servers, pooling_saving, GopsConverter,
};
use pran::sim::{PoolConfig, PoolSimulator};
use pran::traces::{generate, FlashCrowd, Point, TraceConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let num_cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    // A day in the city, one-minute resolution, with a stadium event:
    // 19:00–22:00, epicentre in the north-east, +60 % utilization at peak.
    let mut cfg = TraceConfig::default_day(num_cells, seed);
    cfg.flash_crowds.push(FlashCrowd {
        epicenter: Point {
            x: 7_500.0,
            y: 7_500.0,
        },
        radius_m: 2_500.0,
        start_s: 19.0 * 3600.0,
        duration_s: 3.0 * 3600.0,
        boost: 0.6,
    });
    let trace = generate(&cfg);
    println!(
        "generated {} cells × {} steps (step {}s), multiplexing gain {:.2}×",
        trace.num_cells(),
        trace.num_steps(),
        trace.step_seconds,
        trace.multiplexing_gain()
    );

    // Dimensioning: dedicated per-cell peak vs shared pool.
    let conv = GopsConverter::default_eval();
    let capacity = 400.0;
    let dedicated = dedicated_servers(&trace, &conv, capacity);
    let pooled = pooled_servers(&trace, &conv, capacity);
    println!("\n== provisioning (servers of {capacity} GOPS) ==");
    println!("  dedicated (per-cell peaks): {}", dedicated.servers);
    println!("  pooled    (shared pool):    {}", pooled.servers);
    println!(
        "  saving: {:.0}%",
        pooling_saving(&dedicated, &pooled) * 100.0
    );

    // Simulate the pool through the day with a few spare servers.
    let pool_size = pooled.servers + 2;
    let mut sim_cfg = PoolConfig::default_eval(pool_size);
    sim_cfg.epoch_steps = 15; // 15-minute epochs
    let mut sim = PoolSimulator::new(trace, sim_cfg);
    let report = sim.run();
    let m = &report.metrics;

    println!("\n== simulated day on a {pool_size}-server pool ==");
    println!(
        "  tasks {}  miss ratio {:.4}%  migrations {}",
        m.tasks_total,
        m.miss_ratio() * 100.0,
        m.migrations
    );
    println!(
        "  response time: mean {:?}  p99 {:?}",
        m.response_times.mean(),
        m.response_times.quantile(0.99)
    );

    // Server-usage timeline (one char per epoch, scaled 0-9).
    println!("\n== servers in use per epoch (00:00 → 24:00) ==");
    let line: String = m
        .servers_used
        .iter()
        .map(|&s| char::from_digit(s.min(9) as u32, 10).unwrap())
        .collect();
    println!("  {line}");
    let peak_epoch = m
        .servers_used
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let minutes = peak_epoch * 15;
    println!(
        "  peak {} servers at ~{:02}:{:02} (evening peak + flash crowd)",
        m.peak_servers(),
        minutes / 60,
        minutes % 60
    );
    let _ = Duration::ZERO;
}
