//! HARQ incremental redundancy: why the deadline exists.
//!
//! The 3 ms HARQ turnaround that PRAN's scheduler fights for is the window
//! in which the pool must decode a subframe and answer ACK/NACK. This
//! example runs the actual protocol over an AWGN sweep: at each SNR, a
//! rate-0.9 first transmission either decodes or triggers retransmissions
//! with fresh redundancy versions, and the table shows how the average
//! number of transmissions (and hence latency) climbs as SNR drops.
//!
//! ```sh
//! cargo run --release --example harq_ir
//! ```

use pran::phy::harq::{HarqOutcome, HarqReceiver, HarqTransmitter, MAX_TRANSMISSIONS};
use pran::phy::kernels::{Crc, QppInterleaver, CRC24A};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const K: usize = 512;

fn build_message(rng: &mut SmallRng) -> Vec<u8> {
    let crc = Crc::new(CRC24A);
    let mut payload: Vec<u8> = (0..(K / 8 - 6)).map(|_| rng.gen()).collect();
    crc.attach(&mut payload);
    let mut bits: Vec<u8> = payload
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| (byte >> i) & 1))
        .collect();
    bits.resize(K, 0);
    bits
}

fn awgn(bits: &[u8], sigma: f64, rng: &mut SmallRng) -> Vec<f64> {
    bits.iter()
        .map(|&b| {
            let x = if b == 0 { 1.0 } else { -1.0 };
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            2.0 * (x + sigma * n) / (sigma * sigma)
        })
        .collect()
}

fn main() {
    let il = QppInterleaver::for_block_size(K).expect("supported block size");
    let grant = (K as f64 / 0.9) as usize; // aggressive rate-0.9 first try
    let trials = 30;

    println!("HARQ incremental redundancy, K={K}, first-transmission rate 0.9\n");
    println!("| Es/N0 (dB) | success | avg transmissions | residual failures |");
    println!("|------------|---------|-------------------|-------------------|");

    for &snr_db in &[10.0f64, 8.0, 6.0, 4.0, 2.0, 0.0, -1.0, -2.0] {
        let sigma = (10f64.powf(-snr_db / 10.0) / 1.0).sqrt();
        let mut rng = SmallRng::seed_from_u64(0x41B + (snr_db * 10.0) as i64 as u64);
        let mut total_tx = 0usize;
        let mut successes = 0usize;
        for _ in 0..trials {
            let bits = build_message(&mut rng);
            let mut tx = HarqTransmitter::new(&bits, &il, grant);
            let mut rx = HarqReceiver::new(K);
            let mut done = false;
            while let Some((rv, coded)) = tx.transmit() {
                let llrs = awgn(&coded, sigma, &mut rng);
                if let HarqOutcome::Ack(_) = rx.receive(&llrs, rv, &il, 6) {
                    done = true;
                    break;
                }
            }
            total_tx += tx.attempts;
            if done {
                successes += 1;
            }
        }
        println!(
            "| {snr_db:>10.1} | {:>6.0}% | {:>17.2} | {:>17} |",
            successes as f64 / trials as f64 * 100.0,
            total_tx as f64 / trials as f64,
            trials - successes
        );
    }

    println!(
        "\nreading the table: every extra transmission is another {}-ms HARQ\n\
         round trip the user waits — the pool's 2 ms compute budget exists so\n\
         that the *protocol*, not the processing, sets this latency. Beyond\n\
         {} transmissions the block is abandoned (residual failures).",
        3, MAX_TRANSMISSIONS
    );
}
