//! Quickstart: stand up a PRAN pool, place cells, survive a failure.
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use pran::apps::{ConsolidationApp, FailoverApp, LoadBalancerApp};
use pran::{Controller, SystemConfig};

fn main() {
    // A pool of 6 commodity servers (400 GOPS, 8 cores each) serving
    // 20 MHz / 4×2 cells — the evaluation defaults.
    let config = SystemConfig::default_eval(6);
    let mut ctl = Controller::new(config);

    // Programmability: policy is apps, not controller code.
    ctl.install_app(Box::new(FailoverApp::new()));
    ctl.install_app(Box::new(ConsolidationApp::new(0.25, 0.75)));
    ctl.install_app(Box::new(LoadBalancerApp::new(0.9)));

    // Register 10 cells and feed one round of load telemetry.
    let cells: Vec<usize> = (0..10).map(|_| ctl.register_cell()).collect();
    let loads = [0.7, 0.2, 0.5, 0.9, 0.1, 0.4, 0.6, 0.3, 0.8, 0.5];
    for (&cell, &load) in cells.iter().zip(&loads) {
        ctl.report_load(cell, load).expect("cell registered");
    }

    // First placement epoch.
    let report = ctl.run_epoch(Duration::from_secs(60));
    println!("== epoch {} ==", report.epoch);
    println!(
        "  placed {} cells on {} servers ({} unplaced)",
        cells.len() - report.unplaced,
        report.servers_used,
        report.unplaced
    );
    println!(
        "  migrations: {}, app actions: {} applied / {} rejected",
        report.migrations, report.actions_applied, report.actions_rejected
    );

    print_placement(&ctl);

    // Kill the server hosting cell 0; the failover app re-places its
    // cells immediately — no waiting for the next epoch.
    let victim = ctl.placement().assignment[0].expect("cell 0 placed");
    println!("\n== failing server {victim} ==");
    let failure = ctl
        .server_failed(victim, Duration::from_secs(90))
        .expect("valid server");
    println!(
        "  displaced {} cells, {} re-placed immediately by the failover app",
        failure.displaced.len(),
        failure.replaced
    );

    print_placement(&ctl);

    // Server returns; the next epochs fold it back in as load requires.
    ctl.server_recovered(victim, Duration::from_secs(300))
        .unwrap();
    let report = ctl.run_epoch(Duration::from_secs(360));
    println!("\n== epoch {} (after recovery) ==", report.epoch);
    println!("  servers in use: {}", report.servers_used);

    let stats = ctl.stats();
    println!("\n== lifetime stats ==");
    println!(
        "  epochs {}  migrations {}  actions {}/{}  failovers {}",
        stats.epochs,
        stats.migrations,
        stats.actions_applied,
        stats.actions_applied + stats.actions_rejected,
        stats.failovers
    );
}

fn print_placement(ctl: &Controller) {
    let view = ctl.view();
    println!("  placement:");
    for s in &view.servers {
        if s.cells == 0 && s.alive {
            continue;
        }
        let status = if s.alive { "up  " } else { "DOWN" };
        let members: Vec<String> = view
            .cells
            .iter()
            .filter(|c| c.server == Some(s.id))
            .map(|c| format!("c{}", c.id))
            .collect();
        println!(
            "    server {} [{}] {:5.1}% [{}]",
            s.id,
            status,
            s.utilization() * 100.0,
            members.join(" ")
        );
    }
}
