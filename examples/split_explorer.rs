//! Split explorer: fronthaul bandwidth / latency / pooling trade-offs.
//!
//! PRAN's fronthaul argument in one table: shipping raw I/Q (CPRI) costs
//! antennas × sample-rate regardless of load, while a partial PHY split
//! (FFT at the front-end) scales with *used* PRBs — at the price of a
//! little compute that can no longer be pooled. This example sweeps the
//! functional splits over antenna counts and load levels and prints the
//! required bandwidth, the latency each split tolerates, and the reach
//! (max fiber km) that tolerance buys.
//!
//! ```sh
//! cargo run --example split_explorer [bandwidth: 5|10|20]
//! ```

use std::time::Duration;

use pran::fronthaul::{CpriConfig, FronthaulPath, FunctionalSplit};
use pran::phy::frame::{AntennaConfig, Bandwidth};
use pran::phy::mcs::Mcs;

fn main() {
    let bw = match std::env::args().nth(1).as_deref() {
        Some("5") => Bandwidth::Mhz5,
        Some("10") => Bandwidth::Mhz10,
        _ => Bandwidth::Mhz20,
    };
    let mcs = Mcs::new(20);
    println!("carrier: {bw}, MCS {} ({})", mcs.index(), mcs.modulation());

    // CPRI reference rates per option.
    let cpri = CpriConfig::standard();
    println!("\n== CPRI line rates (load-independent) ==");
    println!("{:>9} | {:>12} | option", "antennas", "rate");
    for antennas in [1u32, 2, 4, 8] {
        let rate = cpri.line_rate_bps(bw, antennas);
        let opt = cpri
            .required_option(bw, antennas)
            .map(|o| format!("{o:?}"))
            .unwrap_or_else(|| "beyond option 10".into());
        println!("{antennas:>9} | {:>9.3} Gb/s | {opt}", rate / 1e9);
    }

    // Split comparison across load.
    println!("\n== one-way fronthaul bandwidth per split (Gb/s), 4 antennas ==");
    let ant = AntennaConfig::new(4, 2);
    print!("{:>18} |", "split");
    for load in [10, 30, 50, 80, 100] {
        print!(" {load:>5}% |");
    }
    println!(" latency req | pooled compute");
    for split in FunctionalSplit::all() {
        print!("{:>18} |", split.label());
        for load in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let bps = split.bandwidth_bps(bw, ant, load, mcs);
            print!(" {:>6.3} |", bps / 1e9);
        }
        println!(
            " {:>9?} | {:>4.0}%",
            split.max_one_way_latency(),
            split.pooled_compute_fraction() * 100.0
        );
    }

    // How far can the pool be per split, leaving a 1.5 ms compute budget?
    println!("\n== pool reach at a 1.5 ms compute budget (metro path) ==");
    let path = FronthaulPath::metro(0.0);
    let budget = Duration::from_micros(1500);
    for split in FunctionalSplit::all() {
        // Burst per TTI ≈ bandwidth × 1 ms.
        let bytes = (split.bandwidth_bps(bw, ant, 1.0, mcs) * 1e-3 / 8.0) as usize;
        let harq_reach = path.max_distance_for_budget(bytes, budget);
        // The split's own jitter tolerance may bind first.
        let latency_reach = split.max_one_way_latency().as_secs_f64() * 2.0e8;
        let reach = harq_reach.min(latency_reach);
        println!(
            "{:>18}: {:>6.1} km (HARQ allows {:.1}, split tolerance allows {:.1})",
            split.label(),
            reach / 1000.0,
            harq_reach / 1000.0,
            latency_reach / 1000.0
        );
    }

    println!("\ntakeaway: the frequency-domain split keeps ~90% of compute");
    println!("poolable while cutting fronthaul several-fold vs CPRI — and");
    println!("load-dependence means a quiet cell costs almost nothing.");
}
