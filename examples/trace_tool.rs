//! Trace tool: generate, inspect and convert load traces from the CLI.
//!
//! ```sh
//! cargo run --example trace_tool -- generate 20 42 /tmp/city.json
//! cargo run --example trace_tool -- micro 12 7 /tmp/micro.json
//! cargo run --example trace_tool -- inspect /tmp/city.json
//! cargo run --example trace_tool -- csv /tmp/city.json /tmp/city.csv
//! ```

use std::fs;
use std::process::ExitCode;

use pran::sim::ue::{synthesize_trace, UeModelConfig};
use pran::traces::{generate, Trace, TraceConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tool generate <cells> <seed> <out.json>   macroscopic 24 h trace\n  \
         trace_tool micro <cells> <seed> <out.json>      UE-session-driven trace\n  \
         trace_tool inspect <in.json>                    print statistics\n  \
         trace_tool csv <in.json> <out.csv>              convert to CSV"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") if args.len() == 4 => {
            let (cells, seed) = match (args[1].parse(), args[2].parse()) {
                (Ok(c), Ok(s)) => (c, s),
                _ => return usage(),
            };
            let trace = generate(&TraceConfig::default_day(cells, seed));
            fs::write(&args[3], trace.to_json()).expect("write output");
            println!(
                "wrote {} ({} cells × {} steps)",
                args[3],
                trace.num_cells(),
                trace.num_steps()
            );
            ExitCode::SUCCESS
        }
        Some("micro") if args.len() == 4 => {
            let (cells, seed) = match (args[1].parse(), args[2].parse()) {
                (Ok(c), Ok(s)) => (c, s),
                _ => return usage(),
            };
            let cfg = UeModelConfig::default_eval();
            let trace = synthesize_trace(cells, &cfg, 24.0 * 3600.0, seed);
            fs::write(&args[3], trace.to_json()).expect("write output");
            println!(
                "wrote {} (UE-driven, {} cells × {} steps)",
                args[3],
                trace.num_cells(),
                trace.num_steps()
            );
            ExitCode::SUCCESS
        }
        Some("inspect") if args.len() == 2 => {
            let json = fs::read_to_string(&args[1]).expect("read input");
            let trace = match Trace::from_json(&json) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("invalid trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{}: {} cells × {} steps ({:.1} h at {:.0} s/step)",
                args[1],
                trace.num_cells(),
                trace.num_steps(),
                trace.duration_seconds() / 3600.0,
                trace.step_seconds
            );
            println!("  sum of per-cell peaks: {:.2}", trace.sum_of_peaks());
            println!("  peak of aggregate:     {:.2}", trace.peak_of_sum());
            println!("  multiplexing gain:     {:.2}×", trace.multiplexing_gain());
            println!(
                "  pooling saving:        {:.0}%",
                trace.pooling_saving() * 100.0
            );
            for c in 0..trace.num_cells().min(8) {
                println!(
                    "  cell {c:>2} [{}]: peak {:.2}, mean {:.2}, PTM {:.2}",
                    trace.cells[c].class,
                    trace.cell_peak(c),
                    trace.cell_mean(c),
                    trace.cell_peak_to_mean(c)
                );
            }
            if trace.num_cells() > 8 {
                println!("  … and {} more cells", trace.num_cells() - 8);
            }
            ExitCode::SUCCESS
        }
        Some("csv") if args.len() == 3 => {
            let json = fs::read_to_string(&args[1]).expect("read input");
            let trace = Trace::from_json(&json).expect("valid trace");
            fs::write(&args[2], trace.to_csv()).expect("write output");
            println!("wrote {}", args[2]);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
