#!/usr/bin/env bash
# Regenerate every reconstructed table/figure (E1–E17).
# Human-readable tables go to stdout; machine-readable JSON to results/.
set -euo pipefail
cd "$(dirname "$0")"
for exp in e1_compute_table e2_proc_time e3_traces e4_multiplexing \
           e5_ilp_vs_heuristic e6_deadlines e7_fronthaul e8_failover \
           e9_predictors e10_ablations e11_deployment e12_admission \
           e13_chaos e14_insight e15_metro e16_soak e17_mc; do
    echo "================================================================"
    cargo run --release -q -p bench --bin "$exp"
    echo
done
echo "Criterion microbenchmarks (slow; statistical):"
echo "  cargo bench -p bench"
