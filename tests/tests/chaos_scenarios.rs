//! Cross-crate chaos scenarios: the DSL, the injectors, the invariant
//! checker and the shared simulation clock working together end to end.

use std::time::Duration;

use pran::SystemConfig;
use pran_chaos::{replay, run_scenario, ChaosEvent, InvariantKind, Scenario, TimedEvent};

fn sys() -> SystemConfig {
    SystemConfig::default_eval(8)
}

fn composed() -> Scenario {
    Scenario {
        name: "composed".into(),
        seed: 17,
        cells: 6,
        servers: 8,
        horizon: Duration::from_secs(600),
        events: vec![
            TimedEvent {
                at: Duration::from_secs(60),
                event: ChaosEvent::LinkDegrade {
                    drop_prob: 0.15,
                    max_jitter: Duration::from_micros(60),
                    bucket_capacity: 0,
                    refill_per_interval: 0,
                    refill_interval: Duration::ZERO,
                },
            },
            TimedEvent {
                at: Duration::from_secs(120),
                event: ChaosEvent::ServerCrash { server: 2 },
            },
            TimedEvent {
                at: Duration::from_secs(200),
                event: ChaosEvent::FlashCrowd {
                    x_m: 5_000.0,
                    y_m: 5_000.0,
                    radius_m: 2_000.0,
                    duration: Duration::from_secs(120),
                    boost: 0.2,
                },
            },
            TimedEvent {
                at: Duration::from_secs(300),
                event: ChaosEvent::ServerRecover { server: 2 },
            },
            TimedEvent {
                at: Duration::from_secs(360),
                event: ChaosEvent::LinkRestore,
            },
            TimedEvent {
                at: Duration::from_secs(480),
                event: ChaosEvent::SnapshotRestore { corrupt: false },
            },
        ],
    }
}

#[test]
fn composed_faults_stay_inside_the_envelope() {
    let report = run_scenario(&composed(), &sys()).expect("scenario runs");
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(report.failovers, 1, "the crash was handled");
    assert!(
        report.metrics.reports_lost > 0,
        "the lossy window reached the data plane"
    );
    assert!(
        report.max_outage <= sys().chaos.outage_bound,
        "failover outage {:?} within bound",
        report.max_outage
    );
}

#[test]
fn scenario_artifacts_replay_bit_for_bit() {
    let scenario = composed();
    let json = scenario.to_json();
    let (parsed, first) = replay(&json, &sys()).expect("artifact replays");
    let (_, second) = replay(&json, &sys()).expect("artifact replays again");
    assert_eq!(parsed, scenario, "JSON round-trip is the identity");
    assert_eq!(first.violations, second.violations);
    assert_eq!(first.reports_dropped, second.reports_dropped);
    assert_eq!(first.metrics, second.metrics);
}

#[test]
fn rate_limited_fronthaul_ticks_on_simulated_time() {
    // Regression for the shared-tick bugfix: a 1-token bucket refilling
    // every 2 ms (2 TTIs) must pass exactly every other report on the
    // data plane, because refills are a function of *simulated* time at
    // the instant each report crosses the link — not of how the caller
    // batches its calls.
    let mut scenario = composed();
    scenario.events = vec![TimedEvent {
        at: Duration::ZERO,
        event: ChaosEvent::LinkDegrade {
            drop_prob: 0.0,
            max_jitter: Duration::ZERO,
            bucket_capacity: 1,
            refill_per_interval: 1,
            refill_interval: Duration::from_millis(2),
        },
    }];
    let report = run_scenario(&scenario, &sys()).expect("scenario runs");
    let m = &report.metrics;
    assert!(m.tasks_total > 0);
    assert_eq!(
        m.reports_lost * 2,
        m.tasks_total,
        "1 token / 2 TTIs passes exactly half of the per-TTI reports \
         ({} lost of {})",
        m.reports_lost,
        m.tasks_total
    );
    // Transport loss is intentional chaos, not a deadline violation.
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.kind == InvariantKind::MissRatioExceeded),
        "violations: {:?}",
        report.violations
    );
}
