//! End-to-end controller scenarios: a day of telemetry, consolidation at
//! night, failures at noon — the whole control loop across crates.

use std::time::Duration;

use pran::apps::{ConsolidationApp, FailoverApp, LoadBalancerApp, SpectrumApp};
use pran::{Controller, SystemConfig};
use pran_traces::{generate, TraceConfig};

/// Drive a controller with trace-derived telemetry for a range of steps.
fn drive(
    ctl: &mut Controller,
    trace: &pran_traces::Trace,
    cells: &[usize],
    steps: std::ops::Range<usize>,
) -> Vec<pran::EpochReport> {
    let mut reports = Vec::new();
    for t in steps {
        for (&cell, &util) in cells.iter().zip(&trace.samples[t]) {
            ctl.report_load(cell, util).expect("registered");
        }
        reports.push(ctl.run_epoch(Duration::from_secs_f64(t as f64 * trace.step_seconds)));
    }
    reports
}

fn day_trace(cells: usize) -> pran_traces::Trace {
    let mut cfg = TraceConfig::default_day(cells, 1234);
    cfg.step_seconds = 900.0; // 15-minute steps: 96 epochs/day
    generate(&cfg)
}

#[test]
fn full_day_places_everyone_with_bounded_churn() {
    let trace = day_trace(16);
    let mut ctl = Controller::new(SystemConfig::default_eval(12));
    ctl.install_app(Box::new(FailoverApp::new()));
    let cells: Vec<usize> = (0..16).map(|_| ctl.register_cell()).collect();

    let reports = drive(&mut ctl, &trace, &cells, 0..trace.num_steps());
    for r in &reports {
        assert_eq!(r.unplaced, 0, "epoch {}: cells unplaced", r.epoch);
    }
    // Churn after the first epoch should be a small fraction of cells.
    let churn: usize = reports[1..].iter().map(|r| r.migrations).sum();
    let per_epoch = churn as f64 / (reports.len() - 1) as f64;
    assert!(
        per_epoch < 4.0,
        "mean churn {per_epoch} cells/epoch too high"
    );
}

#[test]
fn pool_usage_follows_the_diurnal_curve() {
    let trace = day_trace(20);
    let mut ctl = Controller::new(SystemConfig::default_eval(16));
    let cells: Vec<usize> = (0..20).map(|_| ctl.register_cell()).collect();

    let reports = drive(&mut ctl, &trace, &cells, 0..trace.num_steps());
    // Servers used at the nightly minimum (~04:00, step 16) must be lower
    // than at the evening peak (~20:30, step 82).
    let night = reports[16].servers_used;
    let evening = reports[82].servers_used;
    assert!(
        evening > night,
        "evening {evening} should exceed night {night}"
    );
}

#[test]
fn consolidation_shrinks_the_night_pool() {
    let trace = day_trace(20);
    // Without consolidation.
    let mut plain = Controller::new(SystemConfig::default_eval(16));
    let cells: Vec<usize> = (0..20).map(|_| plain.register_cell()).collect();
    let plain_reports = drive(&mut plain, &trace, &cells, 0..30);

    // With consolidation (drains cold servers).
    let mut consolidated = Controller::new(SystemConfig::default_eval(16));
    consolidated.install_app(Box::new(ConsolidationApp::new(0.45, 0.85)));
    let cells2: Vec<usize> = (0..20).map(|_| consolidated.register_cell()).collect();
    let cons_reports = drive(&mut consolidated, &trace, &cells2, 0..30);

    // At night (steps 8..30 ≈ 02:00-07:30) the consolidated pool should
    // not use more servers, and typically fewer.
    let plain_night: usize = plain_reports[8..].iter().map(|r| r.servers_used).sum();
    let cons_night: usize = cons_reports[8..].iter().map(|r| r.servers_used).sum();
    assert!(
        cons_night <= plain_night,
        "consolidation made things worse: {cons_night} vs {plain_night}"
    );
    // Everyone still served.
    assert!(cons_reports.iter().all(|r| r.unplaced == 0));
}

#[test]
fn failure_recovery_with_and_without_the_app() {
    let mut base = SystemConfig::default_eval(8);
    base.headroom = 1.05;

    // Shared setup closure.
    let setup = |with_app: bool| {
        let mut ctl = Controller::new(base.clone());
        if with_app {
            ctl.install_app(Box::new(FailoverApp::new()));
        }
        let cells: Vec<usize> = (0..10).map(|_| ctl.register_cell()).collect();
        for &c in &cells {
            ctl.report_load(c, 0.45).unwrap();
        }
        ctl.run_epoch(Duration::from_secs(60));
        ctl
    };

    // Without the app: displaced cells wait for the next epoch.
    let mut without = setup(false);
    let victim = without.placement().assignment[0].unwrap();
    let rep = without
        .server_failed(victim, Duration::from_secs(61))
        .unwrap();
    assert!(!rep.displaced.is_empty());
    assert_eq!(rep.replaced, 0);

    // With the app: immediate recovery.
    let mut with = setup(true);
    let victim = with.placement().assignment[0].unwrap();
    let rep = with.server_failed(victim, Duration::from_secs(61)).unwrap();
    assert_eq!(
        rep.replaced,
        rep.displaced.len(),
        "failover app must re-place everything"
    );
    // And the resulting placement avoids the dead server.
    assert!(with
        .placement()
        .assignment
        .iter()
        .all(|a| *a != Some(victim)));
}

#[test]
fn spectrum_app_degrades_gracefully_under_overload() {
    // A pool too small for everyone at full tilt.
    let mut cfg = SystemConfig::default_eval(2);
    cfg.headroom = 1.0;
    let mut ctl = Controller::new(cfg);
    ctl.install_app(Box::new(SpectrumApp::new(25, 0.95)));
    let cells: Vec<usize> = (0..5).map(|_| ctl.register_cell()).collect();
    for &c in &cells {
        ctl.report_load(c, 1.0).unwrap();
    }
    let first = ctl.run_epoch(Duration::from_secs(60));
    assert!(first.unplaced > 0, "overload expected");
    assert!(first.actions_applied > 0, "spectrum caps should apply");

    // Caps lower predicted demand; subsequent epochs admit more cells.
    for &c in &cells {
        ctl.report_load(c, 1.0).unwrap();
    }
    let second = ctl.run_epoch(Duration::from_secs(120));
    assert!(
        second.unplaced < first.unplaced,
        "caps should admit more cells: {} vs {}",
        second.unplaced,
        first.unplaced
    );
}

#[test]
fn load_balancer_keeps_hotspots_in_check() {
    let mut ctl = Controller::new(SystemConfig::default_eval(6));
    ctl.install_app(Box::new(LoadBalancerApp::new(0.85)));
    let cells: Vec<usize> = (0..8).map(|_| ctl.register_cell()).collect();
    // Uneven loads.
    let loads = [0.9, 0.9, 0.2, 0.2, 0.2, 0.1, 0.1, 0.1];
    for (&c, &l) in cells.iter().zip(&loads) {
        ctl.report_load(c, l).unwrap();
    }
    for step in 1..=6 {
        ctl.run_epoch(Duration::from_secs(step * 60));
    }
    let view = ctl.view();
    let hottest = view.hottest_server().unwrap().utilization();
    assert!(hottest <= 1.0, "hotspot never exceeds capacity: {hottest}");
}

#[test]
fn actions_are_validated_not_trusted() {
    struct RogueApp;
    impl pran::ControlApp for RogueApp {
        fn name(&self) -> &'static str {
            "rogue"
        }
        fn on_epoch(&mut self, _view: &pran::PoolView) -> Vec<pran::Action> {
            vec![
                pran::Action::Migrate { cell: 999, to: 0 },
                pran::Action::CapPrbs {
                    cell: 0,
                    prbs: 10_000,
                },
                pran::Action::Drain { server: 999 },
            ]
        }
    }
    let mut ctl = Controller::new(SystemConfig::default_eval(2));
    ctl.install_app(Box::new(RogueApp));
    let c = ctl.register_cell();
    ctl.report_load(c, 0.3).unwrap();
    let report = ctl.run_epoch(Duration::from_secs(60));
    assert_eq!(report.actions_applied, 0);
    assert_eq!(report.actions_rejected, 3);
    assert_eq!(report.unplaced, 0, "rogue app cannot break placement");
}

#[test]
fn snapshot_round_trips_through_serde_and_restores_identically() {
    let trace = day_trace(8);
    let mut ctl = Controller::new(SystemConfig::default_eval(6));
    ctl.install_app(Box::new(FailoverApp::new()));
    let cells: Vec<usize> = (0..8).map(|_| ctl.register_cell()).collect();
    drive(&mut ctl, &trace, &cells, 0..12);

    let json = serde_json::to_string(&ctl.snapshot()).expect("snapshot serializes");
    let snap: pran::Snapshot = serde_json::from_str(&json).expect("snapshot parses");
    let restored = Controller::try_restore(snap).expect("intact snapshot restores");
    assert_eq!(restored.view(), ctl.view(), "restore reproduces the view");
    assert_eq!(restored.placement(), ctl.placement());
    assert_eq!(restored.stats().epochs, ctl.stats().epochs);
}

#[test]
fn try_restore_rejects_truncated_placement() {
    let mut ctl = Controller::new(SystemConfig::default_eval(6));
    ctl.install_app(Box::new(FailoverApp::new()));
    for i in 0..4 {
        ctl.register_cell();
        ctl.report_load(i, 0.5).unwrap();
    }
    ctl.run_epoch(Duration::from_secs(60));

    // Corrupt the serialized form: drop the last placement entry so the
    // placement no longer covers every cell.
    let mut value = serde_json::to_value(ctl.snapshot()).expect("snapshot serializes");
    match &mut value {
        serde_json::Value::Object(map) => match map.remove("placement") {
            Some(serde_json::Value::Array(mut placement)) => {
                placement.pop().expect("placement is non-empty");
                map.insert("placement".to_string(), serde_json::Value::Array(placement));
            }
            other => panic!("placement should be an array, got {other:?}"),
        },
        other => panic!("snapshot should be an object, got {other:?}"),
    }
    let snap: pran::Snapshot = serde_json::from_value(value).expect("still parses");
    match Controller::try_restore(snap) {
        Err(pran::SnapshotError::PlacementCellMismatch { placement, cells }) => {
            assert_eq!(placement, 3);
            assert_eq!(cells, 4);
        }
        Err(other) => panic!("expected PlacementCellMismatch, got {other:?}"),
        Ok(_) => panic!("truncated placement must be rejected"),
    }
}

#[test]
fn try_restore_rejects_out_of_range_server_index() {
    let mut ctl = Controller::new(SystemConfig::default_eval(6));
    ctl.install_app(Box::new(FailoverApp::new()));
    for i in 0..4 {
        ctl.register_cell();
        ctl.report_load(i, 0.5).unwrap();
    }
    ctl.run_epoch(Duration::from_secs(60));

    // Point a placement entry at a server the pool does not have. The
    // snapshot still parses; the consistency check must catch it.
    let mut value = serde_json::to_value(ctl.snapshot()).expect("snapshot serializes");
    match &mut value {
        serde_json::Value::Object(map) => match map.remove("placement") {
            Some(serde_json::Value::Array(mut placement)) => {
                placement[0] = serde_json::Value::Number(serde_json::Number::U64(999));
                map.insert("placement".to_string(), serde_json::Value::Array(placement));
            }
            other => panic!("placement should be an array, got {other:?}"),
        },
        other => panic!("snapshot should be an object, got {other:?}"),
    }
    let snap: pran::Snapshot = serde_json::from_value(value).expect("still parses");
    match Controller::try_restore(snap) {
        Err(pran::SnapshotError::ServerIndexOutOfRange {
            cell,
            server,
            servers,
        }) => {
            assert_eq!(cell, 0);
            assert_eq!(server, 999);
            assert_eq!(servers, 6);
        }
        Err(other) => panic!("expected ServerIndexOutOfRange, got {other:?}"),
        Ok(_) => panic!("out-of-range server index must be rejected"),
    }
}
