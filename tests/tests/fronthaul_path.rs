//! Fronthaul integration: framing under faults, and latency budgets
//! feeding the placement layer's reachability matrix.

use std::time::Duration;

use pran_fronthaul::{
    fragment, FaultConfig, FaultInjector, Frame, FrameKind, FronthaulPath, FunctionalSplit,
    Outcome, Reassembler,
};
use pran_phy::frame::{AntennaConfig, Bandwidth};
use pran_phy::mcs::Mcs;
use pran_sched::placement::heuristics::{place, Heuristic};
use pran_sched::placement::PlacementInstance;

#[test]
fn lossy_link_reassembly_with_expiry() {
    // Ship 200 TTIs of fragmented payloads through a 10 %-loss link;
    // complete payloads must be intact, incomplete ones must be expirable.
    let mut injector = FaultInjector::new(
        FaultConfig {
            drop_prob: 0.10,
            ..FaultConfig::clean()
        },
        42,
    );
    let mut reasm = Reassembler::new();
    let payload: Vec<u8> = (0..4000).map(|i| (i % 253) as u8).collect();
    let mut delivered = 0usize;
    for tti in 0..200u64 {
        for frame in fragment(FrameKind::UplinkData, 1, tti, &payload, 1500) {
            match injector.offer(frame.encode()) {
                Outcome::Delivered { data, .. } => {
                    // Corruption is off; decode must succeed.
                    let f = Frame::decode(data).expect("clean frame decodes");
                    if let Some(assembled) = reasm.push(f) {
                        assert_eq!(&assembled.payload[..], &payload[..]);
                        delivered += 1;
                    }
                }
                Outcome::Dropped => {}
                Outcome::RateLimited => unreachable!("no rate limit configured"),
            }
        }
        // HARQ deadline passed for everything older than 3 TTIs.
        reasm.expire_before(tti.saturating_sub(3));
    }
    // With 3 fragments per TTI and 10 % loss, ~73 % of TTIs complete.
    assert!(
        (100..200).contains(&delivered),
        "delivered {delivered}/200 — loss model off"
    );
    assert!(reasm.in_flight() <= 4, "expiry must bound memory");
}

#[test]
fn corrupted_frames_are_rejected_not_misparsed() {
    // Flip every header bit position in turn: the framing layer must
    // either reject the frame or parse it into a *different but coherent*
    // header — never panic, never return the original as valid payload of
    // the wrong shape. (Payload integrity belongs to the CRC layer.)
    let payload = vec![0x55u8; 600];
    let frame = &fragment(FrameKind::DownlinkData, 2, 77, &payload, 1500)[0];
    let wire = frame.encode();
    let mut rejected = 0;
    let mut survived = 0;
    for byte in 0..pran_fronthaul::HEADER_LEN {
        for bit in 0..8u8 {
            let mut corrupted = wire.to_vec();
            corrupted[byte] ^= 1 << bit;
            match Frame::decode(corrupted.into()) {
                Err(_) => rejected += 1,
                Ok(f) => {
                    assert_eq!(f.payload.len(), payload.len());
                    survived += 1;
                }
            }
        }
    }
    // Magic (16 bits), kind (8), length (16) and fragment-header flips
    // must all reject: that is ≥ 40 of the positions.
    assert!(rejected >= 40, "only {rejected} header flips rejected");
    assert_eq!(rejected + survived, pran_fronthaul::HEADER_LEN * 8);
}

#[test]
fn latency_budget_builds_the_reachability_matrix() {
    // Three pool sites at 5/60/400 km; the placement layer must only see
    // the sites the HARQ budget (and burst size per split) permits.
    let bw = Bandwidth::Mhz20;
    let ant = AntennaConfig::pran_default();
    let mcs = Mcs::new(20);
    let split = FunctionalSplit::FrequencyDomain;
    let bytes_per_tti = (split.bandwidth_bps(bw, ant, 1.0, mcs) * 1e-3 / 8.0) as usize;
    // A full-load uplink subframe needs ~1.6 ms on a 100-GOPS core.
    let service = Duration::from_micros(1600);

    let sites = [5_000.0f64, 60_000.0, 400_000.0];
    let allowed_row: Vec<bool> = sites
        .iter()
        .map(|&m| FronthaulPath::metro(m).feasible(bytes_per_tti, service))
        .collect();
    assert_eq!(
        allowed_row,
        vec![true, true, false],
        "400 km must be out of reach"
    );

    // Feed the matrix into placement: cells can only land on reachable
    // sites even when the far site has infinite room.
    let demands = vec![200.0; 4];
    let mut inst = PlacementInstance::uniform(&demands, 3, 450.0);
    inst.allowed = pran_sched::placement::Allowed::Uniform(allowed_row.clone());
    let r = place(&inst, Heuristic::BestFitDecreasing);
    assert!(r.complete());
    for (cell, a) in r.placement.assignment.iter().enumerate() {
        assert_ne!(*a, Some(2), "cell {cell} placed beyond the HARQ horizon");
    }
}

#[test]
fn split_choice_changes_reach() {
    // The MAC-PHY split tolerates much more latency → strictly more sites
    // are reachable than under the CPRI-like splits.
    let bw = Bandwidth::Mhz20;
    let ant = AntennaConfig::pran_default();
    let mcs = Mcs::new(20);
    let service = Duration::from_micros(500);
    let sites = [10_000.0f64, 80_000.0, 200_000.0];

    let reach = |split: FunctionalSplit| -> usize {
        let bytes = (split.bandwidth_bps(bw, ant, 1.0, mcs) * 1e-3 / 8.0) as usize;
        sites
            .iter()
            .filter(|&&m| {
                let path = FronthaulPath::metro(m);
                // Both the HARQ budget and the split's own tolerance bind.
                path.feasible(bytes, service) && path.one_way(bytes) <= split.max_one_way_latency()
            })
            .count()
    };

    let iq = reach(FunctionalSplit::TimeDomainIq);
    let tb = reach(FunctionalSplit::TransportBlocks);
    assert!(
        tb > iq,
        "higher split must reach further: IQ {iq} vs TB {tb}"
    );
}

#[test]
fn tti_payload_survives_wire_roundtrip_at_every_split_size() {
    // Frame sizes differ wildly per split; the framing layer must handle
    // all of them within Ethernet MTUs.
    let bw = Bandwidth::Mhz20;
    let ant = AntennaConfig::pran_default();
    let mcs = Mcs::new(28);
    for split in FunctionalSplit::all() {
        let bytes_per_tti = (split.bandwidth_bps(bw, ant, 1.0, mcs) * 1e-3 / 8.0) as usize;
        let payload: Vec<u8> = (0..bytes_per_tti).map(|i| (i % 251) as u8).collect();
        let frames = fragment(FrameKind::UplinkData, 9, 1234, &payload, 1500);
        let mut reasm = Reassembler::new();
        let mut out = None;
        for f in frames {
            let f = Frame::decode(f.encode()).expect("roundtrip");
            if let Some(a) = reasm.push(f) {
                out = Some(a);
            }
        }
        let a = out.unwrap_or_else(|| panic!("{split}: no reassembly"));
        assert_eq!(a.payload.len(), bytes_per_tti, "{split}");
        assert_eq!(&a.payload[..], &payload[..], "{split}");
    }
}
