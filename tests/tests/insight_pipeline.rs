//! The insight pipeline end to end: record (telemetry) → analyze
//! (`pran-insight`) → gate (`bench-gate` semantics).
//!
//! These are the PR's acceptance criteria: critical-path attribution of
//! every missed deadline in a seeded E6 run must sum to the measured
//! subframe latency within 1 µs, and the regression gate must pass a
//! self-diff of the committed E6 envelope while failing a deliberate
//! +20 % miss-ratio perturbation.

use std::sync::Mutex;
use std::time::Duration;

use pran_insight::gate::{compare_envelopes, GateConfig, Verdict};
use pran_insight::slo::SloMetric;
use pran_insight::spans::{critical_paths, parse_jsonl, DEFAULT_BUDGET_US};
use pran_sched::realtime::workload::{generate, TaskSetConfig};
use pran_sched::realtime::{ParallelConfig, ParallelExecutor};
use pran_telemetry::{export, TelemetryConfig};
use serde_json::Value;

/// The tracer is process-global; tests that reconfigure it must not
/// interleave.
static TRACER: Mutex<()> = Mutex::new(());

/// The committed E6 sample envelope (`bench --bin e6_deadlines -- --sample`).
fn committed_e6_envelope() -> Value {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../results/e6_deadlines_sample.json"
    );
    let text = std::fs::read_to_string(path).expect("committed e6 sample envelope exists");
    serde_json::from_str(&text).expect("committed envelope parses")
}

#[test]
fn critical_path_attribution_is_exact_for_the_seeded_e6_run() {
    let _guard = TRACER.lock().unwrap();
    // The exact workload of `e6_deadlines --sample`: same generator, same
    // seed, non-stealing executor, so the traced misses are deterministic.
    pran_telemetry::configure(TelemetryConfig::sim());
    let mut cfg = TaskSetConfig::default_eval(8, 100, 4, 0.9);
    cfg.seed = 0xE6;
    let set = generate(&cfg);
    let exec = ParallelExecutor::new(ParallelConfig {
        cores: 4,
        batch: 1,
        steal: false,
    });
    let out = exec.execute(&set.tasks);
    let events = pran_telemetry::trace::drain();
    pran_telemetry::disable();
    assert!(out.miss_ratio() > 0.0, "the seeded run must miss deadlines");

    // Analyze through the exported artifact, exactly as the CLI does.
    let jsonl = export::to_jsonl(&events);
    let parsed = parse_jsonl(&jsonl).expect("exported trace parses back");
    let paths = critical_paths(&parsed, DEFAULT_BUDGET_US);

    // Every missed subframe in the trace gets a critical path.
    let misses = parsed
        .iter()
        .filter(|e| e.name == "subframe")
        .filter(|e| {
            let finish = e.field_u64("finish_us").unwrap();
            let deadline = e.field_u64("deadline_us").unwrap();
            finish > deadline
        })
        .count();
    assert!(misses > 0);
    assert_eq!(paths.len(), misses);

    for p in &paths {
        // The four stages partition [arrival, finish]: contiguous, in
        // order, and their sum equals the measured latency within 1 µs
        // (exactly, in fact — everything is integer microseconds).
        assert_eq!(p.stages.len(), 4);
        assert_eq!(p.stages[0].from_us, p.arrival_us);
        for w in p.stages.windows(2) {
            assert_eq!(w[0].to_us, w[1].from_us, "stages must be contiguous");
        }
        assert_eq!(p.stages.last().unwrap().to_us, p.finish_us);
        let attributed = p.attributed_us();
        assert!(
            attributed.abs_diff(p.latency_us) <= 1,
            "attribution {attributed} µs must match latency {} µs",
            p.latency_us
        );
        assert_eq!(attributed, p.latency_us);
        assert!(p.finish_us > p.deadline_us);
        assert_eq!(p.overshoot_us, p.finish_us - p.deadline_us);
    }

    // Aggregate attribution is consistent with the per-path sums.
    let totals = pran_insight::spans::attribution_totals(&paths);
    let total_attributed: u64 = totals.iter().map(|(_, us)| us).sum();
    let total_latency: u64 = paths.iter().map(|p| p.latency_us).sum();
    assert_eq!(total_attributed, total_latency);
}

#[test]
fn gate_passes_self_diff_of_the_committed_envelope() {
    let envelope = committed_e6_envelope();
    let report = compare_envelopes(&envelope, &envelope, &GateConfig::default())
        .expect("committed envelope gates against itself");
    assert!(report.ok(), "self-diff must report zero regressions");
    assert!(report.regressions().is_empty());
    assert!(!report.diffs.is_empty(), "the envelope has gated metrics");
    assert!(report.diffs.iter().all(|d| d.verdict == Verdict::Within));
    // Run the exact same comparison again: the verdict is stable.
    let again = compare_envelopes(&envelope, &envelope, &GateConfig::default()).unwrap();
    assert_eq!(again, report);
}

#[test]
fn gate_fails_a_twenty_percent_miss_ratio_perturbation() {
    let baseline = committed_e6_envelope();
    let miss = baseline
        .get("results")
        .and_then(|r| r.get("parallel_miss_ratio"))
        .and_then(Value::as_f64)
        .expect("committed envelope has a parallel miss ratio");
    assert!(miss > 0.0, "perturbing a zero miss ratio would be vacuous");

    // Rebuild the envelope with the miss ratio inflated by 20 %.
    let Value::Object(mut doc) = baseline.clone() else {
        panic!("envelope is an object");
    };
    let Some(Value::Object(mut results)) = doc.get("results").cloned() else {
        panic!("envelope has results");
    };
    results.insert(
        "parallel_miss_ratio".to_string(),
        Value::Number(serde_json::Number::F64(miss * 1.2)),
    );
    doc.insert("results".to_string(), Value::Object(results));
    let candidate = Value::Object(doc);

    let report = compare_envelopes(&baseline, &candidate, &GateConfig::default())
        .expect("perturbed envelope still gates");
    assert!(!report.ok(), "+20% miss ratio must fail the gate");
    let regressions = report.regressions();
    assert_eq!(regressions.len(), 1);
    assert_eq!(regressions[0].path, "parallel_miss_ratio");
    assert_eq!(regressions[0].verdict, Verdict::Regressed);
    assert!((regressions[0].rel_change.unwrap() - 0.2).abs() < 1e-9);
}

#[test]
fn chaos_harness_surfaces_slo_alerts_alongside_violations() {
    let _guard = TRACER.lock().unwrap();
    pran_telemetry::disable();
    // One stressed scenario: zero outage tolerance on both the chaos
    // invariant and the SLO policy, so a crash that charges any outage
    // is a violation the online monitor must also alert on.
    let cfg = pran_chaos::ExploreConfig::default_eval(24, 0xE14);
    let mut sys = pran::SystemConfig::default_eval(cfg.servers);
    sys.slo.reports_lost_max = u64::MAX;
    sys.chaos.outage_bound = Duration::ZERO;
    sys.slo.outage_p99_max = Duration::ZERO;
    let reports: Vec<_> = (0..cfg.schedules)
        .map(|i| pran_chaos::run_scenario(&pran_chaos::sample_scenario(&cfg, i), &sys).unwrap())
        .collect();
    let alerted: Vec<_> = reports
        .iter()
        .filter(|r| r.alerts.iter().any(|a| a.metric == SloMetric::OutageP99))
        .collect();
    assert!(
        !alerted.is_empty(),
        "some sampled schedule must raise an online outage alert"
    );
    // Every online outage alert corresponds to a proven invariant
    // violation — the monitor's precision on this seeded sweep is 1.
    for report in &alerted {
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == pran_chaos::InvariantKind::OutageExceeded),
            "an outage alert without an outage violation is a false positive"
        );
        let alert = report
            .alerts
            .iter()
            .find(|a| a.metric == SloMetric::OutageP99)
            .unwrap();
        assert!(alert.value > 0.0);
        assert_eq!(alert.threshold, 0.0);
    }
}
