//! Cross-crate integration of the `pran-mc` model checker: exploration
//! against the real controller, counterexample emission through
//! `pran-chaos`, and the stale/linearizable contrast the E17 experiment
//! headlines — at reduced depth so the suite stays fast.

use pran_chaos::{run_scenario, InvariantKind};
use pran_mc::{
    emit_reproducing, explore, replay_path, Conformance, McConfig, Model, Operation, ViewSemantics,
};

#[test]
fn linearizable_exploration_is_clean_and_conformant() {
    let model = Model::new(McConfig {
        depth: 4,
        ..McConfig::headline()
    });
    let report = explore(&model);
    assert_eq!(report.total_violations(), 0, "{:?}", report.violations);
    assert_eq!(report.conformance_failures, Vec::<String>::new());
    assert!(report.conformance_checked > 0, "conformance actually ran");
    assert!(report.dedup_hits > 0, "interleavings must converge");
}

#[test]
fn stale_counterexample_replays_through_the_chaos_harness() {
    let model = Model::new(McConfig {
        depth: 4,
        ..McConfig::headline_stale(2)
    });
    let report = explore(&model);
    let violation = report
        .violations
        .iter()
        .find(|v| v.kind == InvariantKind::PlacementValid)
        .expect("stale views strand cells on dead servers");

    // Abstract → scenario JSON → concrete harness, end to end.
    let repro = emit_reproducing(&model, violation).expect("counterexample reproduces");
    assert!(repro
        .report
        .violations
        .iter()
        .any(|v| v.kind == InvariantKind::PlacementValid));

    // The JSON artifact itself replays deterministically.
    let parsed: pran_chaos::Scenario = serde_json::from_str(&repro.json).expect("artifact parses");
    let again = run_scenario(&parsed, &model.config().sys).expect("artifact runs");
    assert_eq!(
        again.violations.len(),
        repro.report.violations.len(),
        "replaying the artifact reproduces the same verdict"
    );
}

#[test]
fn the_same_schedule_is_safe_when_views_are_linearizable() {
    // The minimal stale counterexample shape — crash then epoch — is
    // harmless under linearizable views: the controller hears about the
    // crash atomically and never places onto the dead server.
    let model = Model::new(McConfig::headline());
    let path = vec![Operation::Fail { server: 0 }, Operation::Epoch];
    let mut state = model.initial_state();
    for &op in &path {
        state = model.apply(&state, op).next;
    }
    assert!(
        state.placement.iter().flatten().all(|&s| s != 0),
        "linearizable epoch avoids the dead server"
    );
    replay_path(&model, &path).expect("and the concrete controller agrees");
}

#[test]
fn exploration_off_conformance_still_counts_states() {
    let model = Model::new(McConfig {
        depth: 3,
        conformance: Conformance::Off,
        ..McConfig::headline()
    });
    let report = explore(&model);
    assert_eq!(report.conformance_checked, 0);
    assert!(report.states > 1);
    assert_eq!(report.semantics, ViewSemantics::Linearizable.label());
}
