//! Metro-scale determinism: the merged report and the telemetry export
//! are pure functions of the root seed — independent of how many worker
//! threads ran the shards and of the order shards were handed out
//! (ISSUE 5 satellite 2).

use std::sync::{Mutex, MutexGuard, OnceLock};

use pran_sched::placement::WarmConfig;
use pran_sim::{MetroConfig, MetroSimulator, PoolConfig};
use pran_telemetry::export::to_jsonl;
use pran_telemetry::TelemetryConfig;
use pran_traces::TraceConfig;

/// The tracer is process-global; tests in this binary run on parallel
/// threads, so everything that configures/drains it takes this lock.
fn lock_tracer() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A small-but-real metro: 72 cells in 8 shards, 2 simulated hours.
fn metro(workers: usize) -> MetroSimulator {
    let config = MetroConfig {
        cells: 72,
        shards: 8,
        workers,
        servers_per_shard: 5,
        seed: 2026,
    };
    let mut pool = PoolConfig::default_eval(config.servers_per_shard);
    pool.warm = Some(WarmConfig::default_eval());
    let mut trace = TraceConfig::default_day(config.cells, config.seed);
    trace.duration_seconds = 2.0 * 3600.0;
    trace.step_seconds = 120.0;
    MetroSimulator::with_pool(config, pool, trace).unwrap()
}

/// Run with tracing on; return (serialized report, canonical JSONL export).
fn traced_run(workers: usize, order: Option<&[usize]>) -> (String, String) {
    pran_telemetry::configure(TelemetryConfig::sim());
    let sim = metro(workers);
    let report = match order {
        Some(o) => sim.run_ordered(o),
        None => sim.run(),
    };
    let events = pran_telemetry::trace::drain();
    pran_telemetry::disable();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    (json, to_jsonl(&events))
}

#[test]
fn merged_report_and_export_identical_across_worker_counts() {
    let _g = lock_tracer();
    let (report_1, export_1) = traced_run(1, None);
    let (report_2, export_2) = traced_run(2, None);
    let (report_8, export_8) = traced_run(8, None);
    assert!(!export_1.is_empty(), "tracing must have captured events");
    assert_eq!(report_1, report_2, "1 vs 2 workers: merged report differs");
    assert_eq!(report_1, report_8, "1 vs 8 workers: merged report differs");
    assert_eq!(
        export_1, export_2,
        "1 vs 2 workers: telemetry export differs"
    );
    assert_eq!(
        export_1, export_8,
        "1 vs 8 workers: telemetry export differs"
    );
}

#[test]
fn shard_execution_order_does_not_matter() {
    let _g = lock_tracer();
    let (report_fwd, export_fwd) = traced_run(4, None);
    // A fixed adversarial permutation: reversed, then odd/even split.
    let shuffled = [7usize, 3, 5, 1, 6, 0, 2, 4];
    let (report_shuf, export_shuf) = traced_run(4, Some(&shuffled));
    assert_eq!(report_fwd, report_shuf, "shard hand-out order leaked");
    assert_eq!(
        export_fwd, export_shuf,
        "telemetry depends on hand-out order"
    );
}

#[test]
fn different_seeds_differ() {
    // Sanity that the byte-compare above is not vacuous: a different root
    // seed must change the merged metrics.
    let _g = lock_tracer();
    let sim_a = metro(4);
    let a = sim_a.run();
    let config_b = MetroConfig {
        seed: 999,
        ..sim_a.config()
    };
    let mut pool = PoolConfig::default_eval(config_b.servers_per_shard);
    pool.warm = Some(WarmConfig::default_eval());
    let mut trace = TraceConfig::default_day(config_b.cells, config_b.seed);
    trace.duration_seconds = 2.0 * 3600.0;
    trace.step_seconds = 120.0;
    let b = MetroSimulator::with_pool(config_b, pool, trace)
        .unwrap()
        .run();
    assert_ne!(
        a.metrics.demand_gops, b.metrics.demand_gops,
        "seed change must move the demand series"
    );
}

#[test]
fn shard_labels_cover_every_event() {
    let _g = lock_tracer();
    pran_telemetry::configure(TelemetryConfig::sim());
    metro(3).run();
    let events = pran_telemetry::trace::drain();
    pran_telemetry::disable();
    assert!(!events.is_empty());
    for e in &events {
        let shard = e
            .field_u64("shard")
            .unwrap_or_else(|| panic!("event {} missing shard label", e.name));
        assert!(shard < 8, "shard label {shard} out of range");
    }
}
