//! Microscopic end-to-end: UE sessions → trace → pool simulation.
//!
//! The deepest integration path in the workspace: user arrivals and link
//! geometry (pran-sim::ue) produce a load trace, which drives the full
//! pool simulator (placement epochs, per-TTI scheduling, failures) — no
//! hand-drawn load anywhere.

use std::time::Duration;

use pran_sim::ue::{synthesize_trace, UeCell, UeModelConfig};
use pran_sim::{FailureSpec, PoolConfig, PoolSimulator};

fn micro_trace(cells: usize, hours: f64, seed: u64) -> pran_traces::Trace {
    let cfg = UeModelConfig::default_eval();
    synthesize_trace(cells, &cfg, hours * 3600.0, seed)
}

#[test]
fn ue_driven_pool_runs_clean() {
    let trace = micro_trace(10, 4.0, 21);
    let mut cfg = PoolConfig::default_eval(8);
    cfg.epoch_steps = 15;
    let mut sim = PoolSimulator::new(trace, cfg);
    let report = sim.run();
    let m = &report.metrics;
    assert!(m.tasks_total > 0);
    assert_eq!(m.tasks_lost, 0, "ample pool must serve all UE-driven load");
    assert!(
        m.miss_ratio() < 0.02,
        "UE-driven load should schedule cleanly: {}",
        m.miss_ratio()
    );
}

#[test]
fn ue_driven_failover_recovers() {
    let trace = micro_trace(12, 6.0, 22);
    let mut cfg = PoolConfig::default_eval(9);
    cfg.epoch_steps = 10;
    let mut sim = PoolSimulator::new(trace, cfg);
    sim.inject_failure(FailureSpec {
        server: 0,
        at: Duration::from_secs(3 * 3600),
        recover_after: Some(Duration::from_secs(1200)),
    });
    let report = sim.run();
    let f = report.failovers.first().expect("failure handled");
    assert_eq!(
        f.replaced, f.displaced,
        "spare capacity absorbs the failure"
    );
}

#[test]
fn microscopic_blocking_appears_only_under_overload() {
    // A lightly loaded UE cell admits everyone; a saturated one blocks.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut light = UeCell::new(UeModelConfig::default_eval());
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..100 {
        light.step(0.15, &mut rng);
    }
    // Guaranteed-rate sessions are heavy (a cell-edge UE can need half the
    // grid), so even light offered load shows a little congestion; it just
    // has to be far below the saturated case.
    assert!(
        light.congestion_blocking() < 0.05,
        "light load should barely congest: {}",
        light.congestion_blocking()
    );
    // Coverage losses (deep shadowing at the cell edge) exist at any load
    // and are not admission control's problem.
    assert!(light.blocking_probability() < 0.15);

    let mut heavy = UeCell::new(UeModelConfig {
        peak_arrival_rate: 1.0,
        ..UeModelConfig::default_eval()
    });
    for _ in 0..100 {
        heavy.step(1.0, &mut rng);
    }
    assert!(
        heavy.congestion_blocking() > 0.3,
        "saturation must congest: {}",
        heavy.congestion_blocking()
    );
}

#[test]
fn micro_and_macro_traces_agree_on_pooling_shape() {
    // The microscopic and macroscopic generators should tell the same
    // qualitative story: class-mixed deployments pool with gain > 1.
    let micro = micro_trace(12, 24.0, 33);
    let macro_ = pran_traces::generate(&pran_traces::TraceConfig::default_day(12, 33));
    for (name, t) in [("micro", &micro), ("macro", &macro_)] {
        assert!(t.validate().is_ok(), "{name}");
        assert!(
            t.multiplexing_gain() > 1.1,
            "{name}: gain {}",
            t.multiplexing_gain()
        );
    }
}
