//! PHY-chain integration: link budget → scheduling grant → real kernels →
//! compute model, all agreeing with each other.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pran_phy::compute::{CellWorkload, ComputeModel, Stage};
use pran_phy::frame::{Bandwidth, Direction};
use pran_phy::link::LinkBudget;
use pran_phy::mcs::Mcs;
use pran_phy::pipeline::{run_uplink_subframe, PipelineConfig};

#[test]
fn link_adaptation_to_pipeline_roundtrip() {
    // A UE at 400 m: the link budget picks an MCS, the scheduler grants
    // PRBs for 5 Mb/s, and the real pipeline decodes the transport block.
    let lb = LinkBudget::macro_cell();
    let sinr = lb.mean_sinr_db(400.0);
    let mcs = lb.adapt_mcs(sinr).expect("UE in coverage");
    let prbs = lb
        .required_prbs(5e6, sinr)
        .expect("rate grantable")
        .clamp(1, 25);

    let cfg = PipelineConfig {
        bandwidth: Bandwidth::Mhz5,
        code_block_bits: 256,
        decoder_iterations: 6,
        noise_sigma: 0.05,
        c_init: 0xC0DE,
    };
    let mut rng = SmallRng::seed_from_u64(99);
    let run = run_uplink_subframe(prbs, mcs, &cfg, &mut rng);
    assert!(run.crc_ok, "pipeline failed at MCS {mcs}, {prbs} PRB");
    assert!(run.payload_ok);
}

#[test]
fn measured_decode_dominance_matches_model() {
    // The analytic model says turbo decode is the largest uplink stage;
    // the measured pipeline must agree (that is what makes the model a
    // valid scale-up of the kernels).
    let model = ComputeModel::calibrated();
    let w = CellWorkload {
        bandwidth: Bandwidth::Mhz5,
        antennas: pran_phy::frame::AntennaConfig::new(1, 1),
        prbs_used: 25,
        mcs: Mcs::new(16),
        direction: Direction::Uplink,
    };
    let model_share = model.subframe_cost(&w).stage_share(Stage::TurboDecode);

    let cfg = PipelineConfig {
        bandwidth: Bandwidth::Mhz5,
        code_block_bits: 512,
        decoder_iterations: 5,
        noise_sigma: 0.04,
        c_init: 7,
    };
    let mut rng = SmallRng::seed_from_u64(5);
    let run = run_uplink_subframe(25, Mcs::new(16), &cfg, &mut rng);
    assert!(run.crc_ok);
    let measured_share = run.stage_share(Stage::TurboDecode);

    assert!(
        model_share > 0.35 && measured_share > 0.35,
        "decode must dominate both: model {model_share:.2}, measured {measured_share:.2}"
    );
}

#[test]
fn pipeline_time_scales_with_allocation() {
    // More PRBs → more coded bits → proportionally more decode work.
    let cfg = PipelineConfig {
        bandwidth: Bandwidth::Mhz10,
        code_block_bits: 512,
        decoder_iterations: 5,
        noise_sigma: 0.04,
        c_init: 3,
    };
    let mut rng = SmallRng::seed_from_u64(17);
    let small = run_uplink_subframe(10, Mcs::new(16), &cfg, &mut rng);
    let large = run_uplink_subframe(40, Mcs::new(16), &cfg, &mut rng);
    assert!(small.crc_ok && large.crc_ok);
    let ratio = large.stage(Stage::TurboDecode).as_secs_f64()
        / small.stage(Stage::TurboDecode).as_secs_f64().max(1e-9);
    // Wide band: wall-clock ratios wobble on a loaded single-core box.
    assert!(
        (1.5..16.0).contains(&ratio),
        "4× the PRBs should cost ~4× the decode: got {ratio:.2}×"
    );
}

#[test]
fn cell_edge_users_cost_less_compute_per_subframe() {
    // Lower MCS → fewer bits per PRB → cheaper decode per subframe, which
    // is why the GOPS model keys on MCS as well as PRBs.
    let model = ComputeModel::calibrated();
    let near = CellWorkload {
        mcs: Mcs::new(26),
        ..CellWorkload::full_load(Direction::Uplink)
    };
    let edge = CellWorkload {
        mcs: Mcs::new(4),
        ..CellWorkload::full_load(Direction::Uplink)
    };
    assert!(model.cell_gops(&near) > 1.5 * model.cell_gops(&edge));
}

#[test]
fn link_budget_mcs_distribution_is_sane() {
    // Sampling UEs uniformly in a 1.5 km disc must produce a *mixture* of
    // modulations — the compute model's MCS sensitivity only matters if
    // real geometries exercise it.
    let lb = LinkBudget::macro_cell();
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut counts = [0usize; 3];
    let n = 2000;
    for i in 0..n {
        // Deterministic radial sampling + random shadowing.
        let r = 50.0 + 1450.0 * (i as f64 / n as f64);
        let sinr = lb.sinr_db(r, &mut rng);
        if let Some(mcs) = lb.adapt_mcs(sinr) {
            counts[match mcs.modulation() {
                pran_phy::mcs::Modulation::Qpsk => 0,
                pran_phy::mcs::Modulation::Qam16 => 1,
                pran_phy::mcs::Modulation::Qam64 => 2,
            }] += 1;
        }
    }
    assert!(
        counts.iter().all(|&c| c > n / 20),
        "modulation mix degenerate: {counts:?}"
    );
}
