//! Placement-layer consistency: ILP vs heuristics vs migration vs
//! dimensioning, on shared instances.

use pran_ilp::BnbConfig;
use pran_sched::placement::dimensioning::{dedicated_servers, pooled_servers, GopsConverter};
use pran_sched::placement::heuristics::{place, Heuristic};
use pran_sched::placement::ilp;
use pran_sched::placement::migration::{diff, incremental_repack};
use pran_sched::placement::PlacementInstance;
use pran_traces::{generate, TraceConfig};

fn random_instance(cells: usize, seed: u64) -> PlacementInstance {
    // Use the trace generator as a demand source so instances look like
    // real epochs rather than uniform noise.
    let mut cfg = TraceConfig::default_day(cells, seed);
    cfg.duration_seconds = 3600.0;
    cfg.step_seconds = 1800.0;
    let trace = generate(&cfg);
    let conv = GopsConverter::default_eval();
    let demands: Vec<f64> = trace.samples[1].iter().map(|&u| conv.gops(u)).collect();
    PlacementInstance::uniform(&demands, cells, 400.0)
}

#[test]
fn ilp_never_worse_than_any_heuristic() {
    for seed in 0..5u64 {
        let inst = random_instance(10, seed);
        let exact = ilp::solve(
            &inst,
            &BnbConfig {
                max_nodes: 20_000,
                ..BnbConfig::default()
            },
        );
        let Some(ilp_placement) = exact.placement else {
            panic!("seed {seed}: ILP found nothing");
        };
        assert!(inst.validate(&ilp_placement).is_ok());
        let ilp_cost = inst.cost(&ilp_placement);
        for h in Heuristic::all() {
            let r = place(&inst, h);
            if r.complete() {
                let h_cost = inst.cost(&r.placement);
                assert!(
                    ilp_cost <= h_cost + 1e-9,
                    "seed {seed}: ILP {ilp_cost} worse than {} {h_cost}",
                    h.label()
                );
            }
        }
        // And never below the combinatorial lower bound.
        assert!(inst.servers_used(&ilp_placement) >= inst.lower_bound_servers());
    }
}

#[test]
fn migration_diff_reconstructs_target() {
    let inst = random_instance(12, 77);
    let a = place(&inst, Heuristic::FirstFitDecreasing).placement;
    let b = place(&inst, Heuristic::WorstFitDecreasing).placement;
    let plan = diff(&a, &b);
    // Applying the plan to `a` yields `b` (for cells the plan covers).
    let mut rebuilt = a.clone();
    for m in &plan.moves {
        assert_eq!(rebuilt.assignment[m.cell], m.from);
        rebuilt.assignment[m.cell] = Some(m.to);
    }
    for (c, (x, y)) in rebuilt
        .assignment
        .iter()
        .zip(b.assignment.iter())
        .enumerate()
    {
        if y.is_some() {
            assert_eq!(x, y, "cell {c} mismatch after applying plan");
        }
    }
}

#[test]
fn repack_is_idempotent() {
    let inst = random_instance(15, 5);
    let seed = place(&inst, Heuristic::FirstFitDecreasing).placement;
    let (once, plan1) = incremental_repack(&inst, &seed);
    let (twice, plan2) = incremental_repack(&inst, &once);
    assert!(plan1.is_empty(), "valid placement should not churn");
    assert!(plan2.is_empty(), "repack must be idempotent");
    assert_eq!(once, twice);
}

#[test]
fn dimensioning_consistent_with_placement() {
    let mut cfg = TraceConfig::default_day(25, 3);
    cfg.step_seconds = 1200.0;
    let trace = generate(&cfg);
    let conv = GopsConverter::default_eval();
    let cap = 400.0;
    let pooled = pooled_servers(&trace, &conv, cap);
    let dedicated = dedicated_servers(&trace, &conv, cap);
    // Sanity chain: pooled ≤ dedicated, and the pool actually fits the
    // worst step when given `pooled.servers` servers.
    assert!(pooled.servers <= dedicated.servers);
    let worst_step = trace
        .samples
        .iter()
        .max_by(|a, b| {
            let ga: f64 = a.iter().map(|&u| conv.gops(u)).sum();
            let gb: f64 = b.iter().map(|&u| conv.gops(u)).sum();
            ga.partial_cmp(&gb).unwrap()
        })
        .unwrap();
    let demands: Vec<f64> = worst_step.iter().map(|&u| conv.gops(u)).collect();
    let inst = PlacementInstance::uniform(&demands, pooled.servers, cap);
    let r = place(&inst, Heuristic::FirstFitDecreasing);
    assert!(
        r.complete(),
        "pool sized by dimensioning must fit the worst step"
    );
}

#[test]
fn ilp_matches_heuristic_time_ordering() {
    // The decomposition claim: heuristics are orders of magnitude faster.
    // (Asserted loosely — CI boxes vary — but the gap must be real.)
    let inst = random_instance(12, 11);
    let t0 = std::time::Instant::now();
    for _ in 0..50 {
        let r = place(&inst, Heuristic::FirstFitDecreasing);
        assert!(r.complete());
    }
    let heuristic_time = t0.elapsed() / 50;

    let exact = ilp::solve(
        &inst,
        &BnbConfig {
            max_nodes: 20_000,
            ..BnbConfig::default()
        },
    );
    assert!(exact.placement.is_some());
    assert!(
        exact.elapsed > heuristic_time * 5,
        "ILP {:?} should dwarf heuristic {:?}",
        exact.elapsed,
        heuristic_time
    );
}
