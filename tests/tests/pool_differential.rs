//! Differential layer for the zero-allocation epoch hot path (ISSUE 6).
//!
//! `PoolSimulator::run` executes epochs through the reusable
//! [`HotBuffers`] scratch (flat `TaskBatch` SoA queues, `simulate_into`,
//! `execute_into`); `run_reference` keeps the original allocate-per-step
//! path. The two must be *byte-identical* after serde serialization —
//! every finish time, histogram bucket, failover record and alert — for
//! every feature that reaches the per-step loop: analytic scheduling,
//! every policy, warm placement, fronthaul faults, server failures and
//! the pinned (steal-free) parallel executor.
//!
//! Work stealing is intentionally absent: a stealing executor races
//! cores against each other and is not deterministic, so it is outside
//! the byte-identity contract (both paths share the same executor there
//! anyway).

use std::time::Duration;

use pran_sched::placement::WarmConfig;
use pran_sched::realtime::{ParallelConfig, Policy};
use pran_sim::{FailureSpec, LinkFault, MetroConfig, MetroSimulator, PoolConfig, PoolSimulator};
use pran_traces::{generate, Trace, TraceConfig};

fn trace(cells: usize, seed: u64) -> Trace {
    let mut cfg = TraceConfig::default_day(cells, seed);
    cfg.duration_seconds = 2.0 * 3600.0;
    cfg.step_seconds = 120.0;
    generate(&cfg)
}

/// Serialize both paths for the same (trace, config, failures) and
/// compare the exact bytes.
fn assert_paths_identical(label: &str, cells: usize, cfg: PoolConfig, failures: &[FailureSpec]) {
    let mut hot = PoolSimulator::new(trace(cells, 42), cfg.clone());
    let mut reference = PoolSimulator::new(trace(cells, 42), cfg);
    for &f in failures {
        hot.inject_failure(f);
        reference.inject_failure(f);
    }
    let hot_json = serde_json::to_string_pretty(&hot.run()).expect("hot report serializes");
    let ref_json =
        serde_json::to_string_pretty(&reference.run_reference()).expect("reference serializes");
    assert_eq!(
        hot_json, ref_json,
        "{label}: hot path diverged from reference"
    );
}

#[test]
fn analytic_default_is_identical() {
    let mut cfg = PoolConfig::default_eval(6);
    cfg.epoch_steps = 10;
    assert_paths_identical("analytic default", 16, cfg, &[]);
}

#[test]
fn every_policy_is_identical() {
    for policy in Policy::all() {
        let mut cfg = PoolConfig::default_eval(5);
        cfg.epoch_steps = 10;
        cfg.scheduler = policy;
        assert_paths_identical(&format!("policy {policy:?}"), 12, cfg, &[]);
    }
}

#[test]
fn warm_placement_is_identical() {
    let mut cfg = PoolConfig::default_eval(6);
    cfg.epoch_steps = 10;
    cfg.warm = Some(WarmConfig::default_eval());
    assert_paths_identical("warm placement", 16, cfg, &[]);
}

#[test]
fn fronthaul_faults_are_identical() {
    // Drops, jitter and a tight token bucket all at once: exercises the
    // per-TTI link advance/offer ordering in the hot path.
    let mut cfg = PoolConfig::default_eval(6);
    cfg.epoch_steps = 10;
    cfg.fronthaul = Some(LinkFault {
        config: pran_fronthaul::fault::FaultConfig {
            drop_prob: 0.08,
            max_jitter: Duration::from_micros(400),
            bucket_capacity: 3,
            refill_per_tick: 2,
            refill_interval: Duration::from_millis(1),
            ..pran_fronthaul::fault::FaultConfig::clean()
        },
        seed: 7,
    });
    assert_paths_identical("fronthaul faults", 16, cfg, &[]);
}

#[test]
fn server_failures_are_identical() {
    let mut cfg = PoolConfig::default_eval(6);
    cfg.epoch_steps = 10;
    let failures = [
        FailureSpec {
            server: 1,
            at: Duration::from_secs(1800),
            recover_after: Some(Duration::from_secs(1200)),
        },
        FailureSpec {
            server: 3,
            at: Duration::from_secs(3600),
            recover_after: None,
        },
    ];
    assert_paths_identical("server failures", 16, cfg, &failures);
}

#[test]
fn pinned_parallel_executor_is_identical() {
    // steal = false keeps the executor deterministic (statically
    // partitioned cores), so the byte contract extends to it.
    let mut cfg = PoolConfig::default_eval(5);
    cfg.epoch_steps = 10;
    cfg.parallel = Some(ParallelConfig {
        cores: cfg.cores_per_server,
        batch: 1,
        steal: false,
    });
    assert_paths_identical("pinned parallel", 12, cfg, &[]);
}

#[test]
fn serial_path_records_deadline_slack() {
    // ISSUE 6 satellite: the analytic branch used to skip
    // `deadline_slack` entirely, so `analytic` rows rendered a fake
    // p50 of zero. Every on-time executed task must record one slack
    // sample; misses must not.
    let mut cfg = PoolConfig::default_eval(6);
    cfg.epoch_steps = 10;
    assert!(
        cfg.parallel.is_none(),
        "this test targets the serial branch"
    );
    let report = PoolSimulator::new(trace(16, 42), cfg).run();
    let m = &report.metrics;
    let executed = m.tasks_total - m.tasks_lost;
    assert!(executed > 0, "trace produced no executed tasks");
    assert_eq!(
        m.deadline_slack.count() + m.deadline_misses,
        executed,
        "slack samples + misses must cover every executed task"
    );
    assert!(m.deadline_slack.count() > 0, "no slack recorded at all");
}

/// Metro layer: the sharded driver must inherit byte-identity, and the
/// hot path must stay independent of the worker crew size.
#[test]
fn metro_hot_path_matches_reference_across_worker_counts() {
    let build = |workers: usize| {
        let config = MetroConfig {
            cells: 48,
            shards: 6,
            workers,
            servers_per_shard: 4,
            seed: 2026,
        };
        let mut pool = PoolConfig::default_eval(config.servers_per_shard);
        pool.warm = Some(WarmConfig::default_eval());
        let mut tc = TraceConfig::default_day(config.cells, config.seed);
        tc.duration_seconds = 2.0 * 3600.0;
        tc.step_seconds = 120.0;
        MetroSimulator::with_pool(config, pool, tc).unwrap()
    };
    let reference = serde_json::to_string_pretty(&build(1).run_reference()).unwrap();
    for workers in [1usize, 2, 8] {
        let hot = serde_json::to_string_pretty(&build(workers).run()).unwrap();
        assert_eq!(
            hot, reference,
            "metro hot path with {workers} workers diverged from reference"
        );
    }
}
