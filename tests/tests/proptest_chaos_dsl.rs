//! Fuzzing the chaos scenario DSL (ISSUE 5 satellite 3): arbitrary valid
//! scenarios round-trip through JSON bit-for-bit, and malformed or
//! structurally invalid input comes back as a typed [`ScenarioError`] —
//! never a panic.

use std::time::Duration;

use proptest::prelude::*;

use pran_chaos::{ChaosEvent, Scenario, ScenarioError, TimedEvent};

/// Raw material for one event: a kind selector plus generic knobs in
/// `[0, 1)` that each kind interprets its own way (the vendored proptest
/// has no `prop_oneof!`, so variants are decoded from plain tuples).
type RawEvent = (u8, u64, f64, f64);

fn decode_event(servers: usize, kind: u8, a: f64, b: f64) -> ChaosEvent {
    match kind % 6 {
        0 => ChaosEvent::ServerCrash {
            server: ((a * servers as f64) as usize).min(servers - 1),
        },
        1 => ChaosEvent::ServerRecover {
            server: ((a * servers as f64) as usize).min(servers - 1),
        },
        2 => ChaosEvent::LinkDegrade {
            drop_prob: a,
            max_jitter: Duration::from_micros((b * 1_000.0) as u64),
            bucket_capacity: (b * 64.0) as u32,
            refill_per_interval: (a * 16.0) as u32,
            refill_interval: Duration::from_micros((a * 10_000_000.0) as u64),
        },
        3 => ChaosEvent::LinkRestore,
        4 => ChaosEvent::FlashCrowd {
            x_m: a * 10_000.0,
            y_m: b * 10_000.0,
            radius_m: 1.0 + b * 5_000.0,
            duration: Duration::from_secs(1 + (a * 600.0) as u64),
            boost: a,
        },
        _ => ChaosEvent::SnapshotRestore { corrupt: a < 0.5 },
    }
}

fn build_scenario(cells: usize, servers: usize, horizon_s: u64, raw: &[RawEvent]) -> Scenario {
    Scenario {
        name: format!("fuzz-{cells}x{servers}"),
        seed: cells as u64 * 31 + servers as u64,
        cells,
        servers,
        horizon: Duration::from_secs(horizon_s),
        events: raw
            .iter()
            .map(|&(kind, at_s, a, b)| TimedEvent {
                at: Duration::from_secs(at_s % (horizon_s + 1)),
                event: decode_event(servers, kind, a, b),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Valid scenarios validate, serialize and come back identical.
    #[test]
    fn round_trip_is_identity(
        cells in 1usize..32,
        servers in 1usize..12,
        horizon_s in 60u64..3_600,
        raw in proptest::collection::vec((0u8..6, 0u64..4_000, 0.0f64..1.0, 0.0f64..1.0), 0..12),
    ) {
        let s = build_scenario(cells, servers, horizon_s, &raw);
        prop_assert_eq!(s.validate(), Ok(()));
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        prop_assert_eq!(back, s);
    }

    /// Arbitrary bytes never panic the parser: every outcome is a typed
    /// error or (vanishingly unlikely) a valid scenario.
    #[test]
    fn arbitrary_input_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let junk = String::from_utf8_lossy(&bytes);
        match Scenario::from_json(&junk) {
            Ok(s) => prop_assert_eq!(s.validate(), Ok(())),
            Err(ScenarioError::Parse(msg)) => prop_assert!(!msg.is_empty()),
            Err(_) => {} // parsed but structurally invalid: also fine
        }
    }

    /// Truncating valid JSON anywhere yields a typed error, not a panic.
    #[test]
    fn truncated_json_rejected(
        cells in 1usize..16,
        servers in 1usize..8,
        raw in proptest::collection::vec((0u8..6, 0u64..700, 0.0f64..1.0, 0.0f64..1.0), 1..8),
        frac in 0.0f64..1.0,
    ) {
        let s = build_scenario(cells, servers, 600, &raw);
        let json = s.to_json();
        let mut cut = ((json.len() as f64 * frac) as usize).min(json.len() - 1);
        while cut > 0 && !json.is_char_boundary(cut) {
            cut -= 1;
        }
        match Scenario::from_json(&json[..cut]) {
            Err(_) => {}
            Ok(back) => prop_assert_eq!(back, s, "only the full text parses to s"),
        }
    }

    /// Corrupting structured fields trips validation with the right
    /// variant (differential: same scenario, one bad field).
    #[test]
    fn field_corruption_yields_typed_errors(
        cells in 1usize..16,
        servers in 1usize..8,
        raw in proptest::collection::vec((0u8..6, 0u64..700, 0.0f64..1.0, 0.0f64..1.0), 0..8),
        bad_server in 100usize..1_000,
        bad_prob in 1.1f64..100.0,
    ) {
        let s = build_scenario(cells, servers, 600, &raw);

        let mut crash = s.clone();
        crash.events.push(TimedEvent {
            at: Duration::ZERO,
            event: ChaosEvent::ServerCrash { server: bad_server },
        });
        prop_assert!(matches!(
            crash.validate(),
            Err(ScenarioError::ServerOutOfRange { .. })
        ));

        let mut degrade = s.clone();
        degrade.events.push(TimedEvent {
            at: Duration::ZERO,
            event: ChaosEvent::LinkDegrade {
                drop_prob: bad_prob,
                max_jitter: Duration::ZERO,
                bucket_capacity: 0,
                refill_per_interval: 0,
                refill_interval: Duration::ZERO,
            },
        });
        prop_assert!(matches!(
            degrade.validate(),
            Err(ScenarioError::ProbabilityOutOfRange { field: "drop_prob", .. })
        ));

        let mut late = s;
        late.events.push(TimedEvent {
            at: late.horizon + Duration::from_secs(1),
            event: ChaosEvent::LinkRestore,
        });
        prop_assert!(matches!(
            late.validate(),
            Err(ScenarioError::EventPastHorizon { .. })
        ));
    }
}
