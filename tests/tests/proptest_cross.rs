//! Cross-crate property tests: invariants that must hold for *any* trace,
//! load pattern or failure sequence.

use proptest::prelude::*;
use std::time::Duration;

use pran::{Controller, SystemConfig};
use pran_sched::placement::heuristics::{place, Heuristic};
use pran_sched::placement::migration::incremental_repack;
use pran_sched::placement::PlacementInstance;
use pran_sched::realtime::{simulate, Policy, RtTask};
use pran_traces::{generate, ClassMix, TraceConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated trace validates structurally and pools at ≥ 1× gain.
    #[test]
    fn traces_always_validate(
        cells in 2usize..20,
        seed in 0u64..1000,
        res in 0.1f64..1.0,
        off in 0.1f64..1.0,
    ) {
        let mut cfg = TraceConfig::default_day(cells, seed);
        cfg.duration_seconds = 4.0 * 3600.0;
        cfg.step_seconds = 600.0;
        cfg.class_mix = ClassMix { residential: res, office: off, transport: 0.2, entertainment: 0.1 };
        let trace = generate(&cfg);
        prop_assert!(trace.validate().is_ok());
        prop_assert!(trace.multiplexing_gain() >= 1.0 - 1e-12);
        prop_assert!(trace.pooling_saving() >= -1e-12);
    }

    /// Heuristic placements are always valid for the cells they place, and
    /// FFD places everything whenever total demand fits comfortably.
    #[test]
    fn heuristic_placements_always_valid(
        demands in proptest::collection::vec(10.0f64..150.0, 1..25),
        seed_h in 0usize..3,
    ) {
        let h = Heuristic::all()[seed_h];
        let total: f64 = demands.iter().sum();
        let servers = ((total / 200.0).ceil() as usize + demands.len()).max(1);
        let inst = PlacementInstance::uniform(&demands, servers, 200.0);
        let r = place(&inst, h);
        // Everything ≤ capacity is placeable given per-cell spare servers.
        prop_assert!(r.complete(), "{}: unplaced {:?}", h.label(), r.unplaced);
        prop_assert!(inst.validate(&r.placement).is_ok());
    }

    /// Incremental repack never invents capacity violations and never
    /// moves a cell that could stay.
    #[test]
    fn repack_preserves_feasibility(
        demands in proptest::collection::vec(10.0f64..120.0, 2..20),
        growth in 1.0f64..1.6,
    ) {
        let servers = demands.len();
        let inst = PlacementInstance::uniform(&demands, servers, 200.0);
        let seed = place(&inst, Heuristic::FirstFitDecreasing);
        prop_assume!(seed.complete());

        let grown: Vec<f64> = demands.iter().map(|d| d * growth).collect();
        let grown_inst = PlacementInstance::uniform(&grown, servers, 200.0);
        let (new, plan) = incremental_repack(&grown_inst, &seed.placement);
        // Feasibility for all placed cells (some may drop if truly stuck).
        let loads = grown_inst.server_loads(&new);
        for (s, &l) in loads.iter().enumerate() {
            prop_assert!(l <= 200.0 + 1e-6, "server {s} overloaded: {l}");
        }
        // No gratuitous churn: if the old placement still fits the grown
        // demands, repack must not move anything.
        if grown_inst.validate(&seed.placement).is_ok() {
            prop_assert!(plan.is_empty(), "still-feasible placement must not churn");
        }
    }

    /// The scheduler simulation conserves tasks: every task finishes
    /// exactly once, busy time equals total service, regardless of policy.
    #[test]
    fn scheduler_conserves_work(
        services in proptest::collection::vec(50u64..2000, 1..40),
        cores in 1usize..5,
        policy_idx in 0usize..4,
    ) {
        let policy = Policy::all()[policy_idx];
        let tasks: Vec<RtTask> = services
            .iter()
            .enumerate()
            .map(|(i, &us)| RtTask {
                id: i,
                cell: i % 7,
                release: Duration::from_micros((i as u64 % 5) * 300),
                deadline: Duration::from_micros(2_000 + (i as u64 % 5) * 300),
                service: Duration::from_micros(us),
            })
            .collect();
        let out = simulate(&tasks, cores, policy);
        let busy: Duration = out.core_busy.iter().sum();
        let total: Duration = tasks.iter().map(|t| t.service).sum();
        prop_assert_eq!(busy, total, "work lost or invented");
        // Finish times are consistent: ≥ release + service.
        for t in &tasks {
            prop_assert!(out.finish[t.id] >= t.release + t.service);
        }
        // Makespan bounds: at least critical path, at most serialized.
        let longest = tasks.iter().map(|t| t.service).max().unwrap();
        prop_assert!(out.makespan >= longest);
        let last_release = tasks.iter().map(|t| t.release).max().unwrap();
        prop_assert!(out.makespan <= last_release + total);
    }

    /// Controller invariant: after any epoch, no server exceeds capacity
    /// at predicted demand, and placed + unplaced == active cells.
    #[test]
    fn controller_epochs_never_overload(
        loads in proptest::collection::vec(0.0f64..1.0, 1..15),
        servers in 2usize..10,
    ) {
        let mut ctl = Controller::new(SystemConfig::default_eval(servers));
        let cells: Vec<usize> = (0..loads.len()).map(|_| ctl.register_cell()).collect();
        for (&c, &l) in cells.iter().zip(&loads) {
            ctl.report_load(c, l).unwrap();
        }
        let report = ctl.run_epoch(Duration::from_secs(60));
        let view = ctl.view();
        for s in &view.servers {
            prop_assert!(
                s.load_gops <= s.capacity_gops + 1e-6,
                "server {} at {}/{}",
                s.id, s.load_gops, s.capacity_gops
            );
        }
        let placed = view.cells.iter().filter(|c| c.server.is_some()).count();
        prop_assert_eq!(placed + report.unplaced, loads.len());
    }
}
