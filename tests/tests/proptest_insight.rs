//! Property tests for the `pran-insight` span pipeline: exporting any
//! span nest to JSONL and reading it back through
//! `pran_insight::spans::parse_jsonl` must be lossless, in both clock
//! domains, and the reconstructed forest must nest by containment.

use proptest::prelude::*;

use pran_insight::spans::{
    build_span_forest, events_from_trace, parse_jsonl, OwnedEvent, SpanNode,
};
use pran_telemetry::export;
use pran_telemetry::trace::{Domain, FieldValue, TraceEvent};

/// Fixed name pool — trace event names are `&'static str`.
const NAMES: [&str; 4] = ["phase.alpha", "phase.beta", "phase.gamma", "phase.delta"];

/// One synthetic span covering `[start, end]` in `domain`, carrying a
/// mixed-type field set so every `Scalar` variant round-trips. Sim spans
/// use the `start_us`/`finish_us` encoding, mono spans the
/// at-`start`-with-`dur_us` encoding — the two shapes the exporter
/// actually writes.
fn span_event(domain: Domain, name_idx: usize, start: u64, end: u64, gain: f64) -> TraceEvent {
    let name = NAMES[name_idx % NAMES.len()];
    match domain {
        Domain::Sim => TraceEvent::new(
            start,
            domain,
            name,
            &[
                ("start_us", FieldValue::U64(start)),
                ("finish_us", FieldValue::U64(end)),
                ("gain", FieldValue::F64(gain)),
                ("ok", FieldValue::Bool(end > start)),
                ("kind", FieldValue::Str("nested")),
                ("delta", FieldValue::I64(-(start as i64 % 7) - 1)),
            ],
        ),
        Domain::Mono => TraceEvent::new(
            start,
            domain,
            name,
            &[
                ("dur_us", FieldValue::U64(end - start)),
                ("gain", FieldValue::F64(gain)),
            ],
        ),
    }
}

/// Recursively fill `[start, end]` with a span and up to two strictly
/// nested children per level, deterministic in the shape parameters.
fn build_nest(
    out: &mut Vec<TraceEvent>,
    domain: Domain,
    start: u64,
    end: u64,
    depth: usize,
    shape: u64,
) {
    out.push(span_event(
        domain,
        (shape as usize).wrapping_add(depth),
        start,
        end,
        (end - start) as f64 / 3.0 + shape as f64 * 0.125,
    ));
    let width = end - start;
    if depth == 0 || width < 8 {
        return;
    }
    let children = 1 + shape % 2;
    // Children split the strict interior (start+1 .. end-1) evenly.
    let interior = width - 2;
    let slot = interior / children;
    for c in 0..children {
        let c_start = start + 1 + c * slot;
        let c_end = if c == children - 1 {
            end - 1
        } else {
            c_start + slot - 1
        };
        if c_end > c_start {
            build_nest(out, domain, c_start, c_end, depth - 1, shape / 2 + c);
        }
    }
}

/// Canonical order for multiset comparison: the exporter sorts lines by
/// `(ts_us, text)`, which is not the emission order, so losslessness is
/// a statement about the set of events, not their sequence.
fn canonical(mut events: Vec<OwnedEvent>) -> Vec<OwnedEvent> {
    events.sort_by(|a, b| (a.ts_us, format!("{a:?}")).cmp(&(b.ts_us, format!("{b:?}"))));
    events
}

/// Sum of nodes in a forest, checking child containment along the way.
fn check_forest(nodes: &[SpanNode]) -> usize {
    let mut count = 0;
    for node in nodes {
        count += 1;
        assert!(node.end_us >= node.start_us);
        for child in &node.children {
            assert!(
                child.start_us >= node.start_us && child.end_us <= node.end_us,
                "child [{}, {}] must nest inside parent [{}, {}]",
                child.start_us,
                child.end_us,
                node.start_us,
                node.end_us
            );
            assert_eq!(child.domain, node.domain);
        }
        count += check_forest(&node.children);
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// JSONL export → parse is lossless for randomized span nests in
    /// both clock domains, and the rebuilt forest nests every span.
    #[test]
    fn jsonl_roundtrip_is_lossless_over_span_nests(
        roots in 1usize..4,
        depth in 0usize..4,
        width in 50u64..5000,
        shape in 0u64..1000,
        both_domains in any::<bool>(),
    ) {
        let mut events = Vec::new();
        for r in 0..roots {
            let start = r as u64 * (width + 10);
            build_nest(&mut events, Domain::Sim, start, start + width, depth, shape + r as u64);
            if both_domains {
                build_nest(&mut events, Domain::Mono, start, start + width, depth, shape + r as u64);
            }
        }

        // Lossless: the parsed artifact carries exactly the events the
        // tracer held, after both sides are put in canonical order.
        let jsonl = export::to_jsonl(&events);
        prop_assert_eq!(export::validate_jsonl(&jsonl).unwrap(), events.len());
        let parsed = parse_jsonl(&jsonl).unwrap();
        prop_assert_eq!(parsed.len(), events.len());
        let direct = canonical(events_from_trace(&events));
        let roundtripped = canonical(parsed.clone());
        prop_assert_eq!(&roundtripped, &direct);

        // Reconstruction: every span becomes a node, nested by strict
        // interval containment, per domain.
        for domain in [Domain::Sim, Domain::Mono] {
            let domain_events: Vec<OwnedEvent> = parsed
                .iter()
                .filter(|e| e.domain == domain)
                .cloned()
                .collect();
            let forest = build_span_forest(&domain_events);
            prop_assert_eq!(check_forest(&forest), domain_events.len());
            // Each root in the forest is one of the generated roots:
            // distinct intervals never overlap across roots, so the
            // forest has exactly `roots` trees (when this domain got any).
            if !domain_events.is_empty() {
                prop_assert_eq!(forest.len(), roots);
            }
        }
    }
}
