//! Differential property tests: warm-start placement vs the cold-start
//! heuristic and the exact ILP (ISSUE 5 satellite 1).
//!
//! Over randomized demand walks the [`WarmPlacer`] must
//! (a) never violate [`ServerSpec::fits`] on *actual* demands — the
//!     feasibility-transfer argument in `pran_sched::placement::warm`,
//! (b) stay within the documented server-count gap of a cold
//!     best-fit-decreasing solve of the same actual demands, and
//! (c) on small instances, stay within the combined documented gap of the
//!     `pran-ilp` optimum (warm ≤ gap(cold) and cold ≤ 11/9·OPT + 1).

use proptest::prelude::*;

use pran_sched::placement::heuristics::{place, Heuristic};
use pran_sched::placement::ilp::solve_default;
use pran_sched::placement::{PlacementInstance, WarmConfig, WarmPlacer, WARM_GAP_FACTOR};

/// Every placed cell's server must fit its *actual* aggregate load.
fn assert_actual_feasible(inst: &PlacementInstance, p: &pran_sched::placement::Placement) {
    for (server, load) in inst.server_loads(p).iter().enumerate() {
        assert!(
            inst.servers[server].fits(*load),
            "server {server} overloaded on actual demand: {load} GOPS"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core differential property, ≥256 randomized demand walks.
    #[test]
    fn warm_placement_feasible_and_within_gap_of_cold(
        demands in proptest::collection::vec(10.0f64..100.0, 1..24),
        band in 0.0f64..0.30,
        epochs in 1usize..6,
        drift_seed in 0u64..1_000,
    ) {
        let n = demands.len();
        // One 200-GOPS server per cell: bookings at ≤ 100 × 1.3 always
        // fit somewhere, so every cell is always placeable.
        let capacity = 200.0;
        let mut warm = WarmPlacer::new(WarmConfig { band });
        let mut current = demands.clone();
        for epoch in 0..epochs {
            let inst = PlacementInstance::uniform(&current, n, capacity);
            let (p, _plan, stats) = warm.epoch(&inst);
            prop_assert_eq!(p.placed(), n, "epoch {}: all cells placeable", epoch);
            prop_assert!(stats.dirty <= n);
            assert_actual_feasible(&inst, &p);

            // Differential vs the cold heuristic on the same actuals.
            let cold = place(&inst, Heuristic::BestFitDecreasing);
            let warm_used = inst.servers_used(&p);
            let cold_used = inst.servers_used(&cold.placement);
            prop_assert!(
                warm_used <= WarmPlacer::gap_bound(cold_used),
                "epoch {}: warm {} vs cold {} exceeds documented gap {}",
                epoch, warm_used, cold_used, WarmPlacer::gap_bound(cold_used)
            );

            // Deterministic pseudo-random drift for the next epoch.
            for (i, d) in current.iter_mut().enumerate() {
                let mix = drift_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((epoch * n + i) as u64);
                let r = ((mix >> 33) % 1000) as f64 / 1000.0; // [0, 1)
                *d = (*d * (0.7 + 0.6 * r)).clamp(10.0, 100.0);
            }
        }
    }

    /// On small instances the exact ILP optimum anchors the gap chain:
    /// cold BFD ≤ 11/9·OPT + 1, warm ≤ ⌈2·cold⌉ + 1.
    #[test]
    fn warm_placement_within_combined_gap_of_ilp(
        // Booked demand tops out at 75 × 1.25 < 100, so bookings always
        // fit a server and the instance stays feasible for the warm path.
        demands in proptest::collection::vec(10.0f64..75.0, 1..7),
        band in 0.0f64..0.25,
    ) {
        let n = demands.len();
        let inst = PlacementInstance::uniform(&demands, n, 100.0);
        let mut warm = WarmPlacer::new(WarmConfig { band });
        let (p, _, _) = warm.epoch(&inst);
        prop_assert_eq!(p.placed(), n);
        assert_actual_feasible(&inst, &p);
        let warm_used = inst.servers_used(&p);

        let cold = place(&inst, Heuristic::BestFitDecreasing);
        let cold_used = inst.servers_used(&cold.placement);

        let ilp = solve_default(&inst);
        if let (true, Some(opt_p)) = (ilp.optimal, &ilp.placement) {
            let opt_used = inst.servers_used(opt_p);
            prop_assert!(opt_used <= cold_used, "ILP can't be worse than BFD");
            let bfd_bound = (11.0 / 9.0 * opt_used as f64 + 1.0).floor() as usize;
            prop_assert!(
                cold_used <= bfd_bound,
                "BFD {} vs OPT {} breaks 11/9·OPT+1", cold_used, opt_used
            );
            let combined =
                (WARM_GAP_FACTOR * bfd_bound as f64).ceil() as usize + 1;
            prop_assert!(
                warm_used <= combined,
                "warm {} vs OPT {} exceeds combined gap {}",
                warm_used, opt_used, combined
            );
        }
    }

    /// Hysteresis actually suppresses churn: after converging, in-band
    /// wobble produces zero dirty cells and zero moves.
    #[test]
    fn in_band_wobble_never_churns(
        demands in proptest::collection::vec(20.0f64..80.0, 1..16),
        wobble in -0.04f64..0.04,
    ) {
        let n = demands.len();
        let mut warm = WarmPlacer::new(WarmConfig { band: 0.10 });
        warm.epoch(&PlacementInstance::uniform(&demands, n, 200.0));
        let wobbled: Vec<f64> = demands.iter().map(|d| d * (1.0 + wobble)).collect();
        let (_, plan, stats) =
            warm.epoch(&PlacementInstance::uniform(&wobbled, n, 200.0));
        prop_assert_eq!(stats.dirty, 0, "±4% stays inside the 10% band");
        prop_assert!(plan.is_empty());
    }
}
