//! Snapshot/restore round-trips taken *mid-failure*: a server is down,
//! displaced cells may be waiting for the next epoch, and the snapshot
//! must capture that exact degraded state — not a cleaned-up version of
//! it. The restored controller then has to finish the recovery the
//! original was in the middle of.

use std::time::Duration;

use pran::apps::FailoverApp;
use pran::{Controller, SystemConfig};

/// A controller mid-incident: 10 cells on 8 servers, one epoch run, one
/// hosting server failed. Returns the controller and the dead server id.
fn controller_mid_failure(with_app: bool) -> (Controller, usize) {
    let mut cfg = SystemConfig::default_eval(8);
    cfg.headroom = 1.05;
    let mut ctl = Controller::new(cfg);
    if with_app {
        ctl.install_app(Box::new(FailoverApp::new()));
    }
    let cells: Vec<usize> = (0..10).map(|_| ctl.register_cell()).collect();
    for &c in &cells {
        ctl.report_load(c, 0.45).unwrap();
    }
    ctl.run_epoch(Duration::from_secs(60));
    let victim = ctl.placement().assignment[0].expect("cell 0 placed");
    ctl.server_failed(victim, Duration::from_secs(61)).unwrap();
    (ctl, victim)
}

fn restore_via_json(ctl: &Controller) -> Controller {
    let json = serde_json::to_string(&ctl.snapshot()).expect("snapshot serializes");
    let snap: pran::Snapshot = serde_json::from_str(&json).expect("snapshot parses");
    Controller::try_restore(snap).expect("intact mid-failure snapshot restores")
}

#[test]
fn mid_failure_snapshot_restores_the_degraded_state_exactly() {
    // No failover app: displaced cells are parked unplaced, the dead
    // server is still in the view — the ugliest state to round-trip.
    let (ctl, victim) = controller_mid_failure(false);
    let before = ctl.view();
    assert!(!before.servers[victim].alive, "victim marked dead");
    assert!(
        ctl.placement().assignment.iter().any(|a| a.is_none()),
        "displaced cells wait unplaced"
    );

    let restored = restore_via_json(&ctl);
    assert_eq!(restored.view(), before, "restore reproduces the view");
    assert_eq!(restored.placement(), ctl.placement());
    assert_eq!(restored.stats().epochs, ctl.stats().epochs);
}

#[test]
fn restored_controller_finishes_the_recovery_it_was_restored_into() {
    let (ctl, victim) = controller_mid_failure(false);
    let mut restored = restore_via_json(&ctl);

    // The next epoch on the *restored* controller must re-place every
    // displaced cell away from the still-dead server.
    let report = restored.run_epoch(Duration::from_secs(120));
    assert_eq!(report.unplaced, 0, "epoch after restore re-places everyone");
    assert!(restored
        .placement()
        .assignment
        .iter()
        .all(|a| *a != Some(victim)));

    // And recovery of the dead server round-trips too.
    restored
        .server_recovered(victim, Duration::from_secs(121))
        .unwrap();
    assert!(restored.view().servers[victim].alive);
}

#[test]
fn failover_app_survives_restore_and_handles_the_next_failure() {
    // Apps are not serialized — restore hands back a bare controller —
    // so the operational recipe is restore + reinstall. A second
    // failure after that must get the same immediate re-placement the
    // original would have delivered.
    let (ctl, first_victim) = controller_mid_failure(true);
    let mut restored = restore_via_json(&ctl);
    restored.install_app(Box::new(FailoverApp::new()));

    let second_victim = restored
        .placement()
        .assignment
        .iter()
        .flatten()
        .copied()
        .find(|&s| s != first_victim)
        .expect("some other server hosts cells");
    let rep = restored
        .server_failed(second_victim, Duration::from_secs(122))
        .unwrap();
    assert_eq!(
        rep.replaced,
        rep.displaced.len(),
        "reinstalled failover app must re-place everything"
    );
    assert!(restored
        .placement()
        .assignment
        .iter()
        .all(|a| *a != Some(first_victim) && *a != Some(second_victim)));
}

#[test]
fn corrupt_mid_failure_snapshot_is_rejected_not_half_restored() {
    let (ctl, _) = controller_mid_failure(false);
    let mut value = serde_json::to_value(ctl.snapshot()).expect("snapshot serializes");
    match &mut value {
        serde_json::Value::Object(map) => match map.remove("placement") {
            Some(serde_json::Value::Array(mut placement)) => {
                placement.pop().expect("placement is non-empty");
                map.insert("placement".to_string(), serde_json::Value::Array(placement));
            }
            other => panic!("placement should be an array, got {other:?}"),
        },
        other => panic!("snapshot should be an object, got {other:?}"),
    }
    let snap: pran::Snapshot = serde_json::from_value(value).expect("still parses");
    assert!(
        Controller::try_restore(snap).is_err(),
        "truncated mid-failure snapshot must be rejected outright"
    );
}

#[test]
fn double_failure_snapshot_round_trips() {
    // Two servers down at once, snapshot between the failures and after
    // both — every intermediate state must restore exactly.
    let (mut ctl, first) = controller_mid_failure(false);
    let mid = restore_via_json(&ctl);
    assert_eq!(mid.view(), ctl.view());

    let second = ctl
        .placement()
        .assignment
        .iter()
        .flatten()
        .copied()
        .find(|&s| s != first)
        .expect("another hosting server");
    ctl.server_failed(second, Duration::from_secs(62)).unwrap();
    let deep = restore_via_json(&ctl);
    assert_eq!(deep.view(), ctl.view());
    assert!(!deep.view().servers[first].alive);
    assert!(!deep.view().servers[second].alive);
}
