//! Integration tests for the live observability plane (ISSUE 7
//! tentpole): the resident soak service, its flight recorder, and the
//! scrape endpoint — all checked against the batch simulator as the
//! source of truth.

use pran_insight::SloPolicy;
use pran_obs::{http_get, validate_dump, SoakConfig, SoakRunner};
use pran_sched::placement::WarmConfig;
use pran_sim::{MetroConfig, MetroSimulator, PoolConfig, ResidentMetro};
use pran_traces::TraceConfig;

const CELLS: usize = 24;
const SHARDS: usize = 2;
const SEED: u64 = 77;

fn resident(workers: usize) -> ResidentMetro {
    let mut config = MetroConfig::default_eval(CELLS, SHARDS);
    config.seed = SEED;
    config.workers = workers;
    ResidentMetro::try_new(config).expect("config validates")
}

fn runner(workers: usize, capacity: usize) -> SoakRunner {
    SoakRunner::new(
        resident(workers),
        SoakConfig {
            recorder_capacity: capacity,
            dump_dir: None,
            dump_prefix: "itest".to_string(),
        },
    )
}

/// Resident cumulative metrics over N epochs must equal a batch
/// `MetroSimulator::run` over the identical workload, byte for byte —
/// same streams, same placement decisions, same hot execution engine.
#[test]
fn resident_cumulative_equals_batch_metro() {
    let epochs = 6u64;
    let mut service = resident(1);
    for _ in 0..epochs {
        service.step_epoch();
    }

    let mut config = MetroConfig::default_eval(CELLS, SHARDS);
    config.seed = SEED;
    let mut pool = PoolConfig::default_eval(config.servers_per_shard.max(1));
    pool.warm = Some(WarmConfig::default_eval());
    pool.slo = Some(SloPolicy::default_eval());
    let mut trace = TraceConfig::default_day(CELLS, SEED);
    trace.duration_seconds = epochs as f64 * pool.epoch_steps as f64 * trace.step_seconds;
    let batch = MetroSimulator::with_pool(config, pool, trace).expect("batch validates");
    let report = batch.run();

    assert_eq!(service.cumulative(), &report.metrics);
    assert!(report.metrics.tasks_total > 0);
}

/// Capacity K fed K+7 epochs dumps exactly the last K, in epoch order.
#[test]
fn recorder_wraparound_keeps_exactly_last_k() {
    let k = 5usize;
    let mut r = runner(1, k);
    let total = k as u64 + 7;
    for _ in 0..total {
        r.run_epoch();
    }
    let doc = r.recorder().dump("test", total - 1);
    assert_eq!(validate_dump(&doc), Ok(k));
    let serde_json::Value::Array(records) = doc.field("records").unwrap() else {
        panic!("records must be an array");
    };
    let epochs: Vec<u64> = records
        .iter()
        .map(|rec| rec.field("epoch").unwrap().as_u64().unwrap())
        .collect();
    let want: Vec<u64> = (total - k as u64..total).collect();
    assert_eq!(epochs, want, "dump must hold exactly the last {k} epochs");
}

/// The dump is a pure function of the simulation: 1 worker and 8 workers
/// must produce byte-identical dump documents.
#[test]
fn recorder_dumps_are_byte_identical_across_worker_counts() {
    let mut one = runner(1, 8);
    let mut eight = runner(8, 8);
    for _ in 0..12 {
        one.run_epoch();
        eight.run_epoch();
    }
    let a = one.recorder().dump_json("workers", 11);
    let b = eight.recorder().dump_json("workers", 11);
    assert_eq!(a, b, "dumps must not depend on the worker count");
}

/// The scrape endpoint serves `# EOF`-terminated OpenMetrics and the
/// epoch counter advances between scrapes.
#[test]
fn scrape_endpoint_serves_openmetrics_with_advancing_epochs() {
    let mut r = runner(1, 16);
    let addr = r.serve("127.0.0.1:0").expect("ephemeral bind");
    r.run_epoch();
    let (code, first) = http_get(addr, "/metrics").expect("scrape 1");
    assert_eq!(code, 200);
    assert!(first.ends_with("# EOF\n"), "{first}");
    assert!(first.contains("soak_epochs_total 1"), "{first}");

    r.run_epoch();
    r.run_epoch();
    let (_, second) = http_get(addr, "/metrics").expect("scrape 2");
    assert!(second.contains("soak_epochs_total 3"), "{second}");

    let (code, health) = http_get(addr, "/healthz").expect("healthz");
    assert_eq!(code, 200);
    assert!(health.contains("epoch 3"), "{health}");
}

/// A forced SLO alert cuts a dump file whose last record matches the
/// registry gauges for the same epoch.
#[test]
fn forced_alert_dump_file_matches_registry() {
    let dir = std::env::temp_dir().join(format!("pran_soak_test_{}", std::process::id()));
    let mut r = SoakRunner::new(
        resident(1),
        SoakConfig {
            recorder_capacity: 16,
            dump_dir: Some(dir.clone()),
            dump_prefix: "forced".to_string(),
        },
    );
    r.run_epoch();
    let all = r.metro().config().servers_per_shard;
    r.metro_mut().kill_servers(0, all);
    let out = r.run_epoch();
    let path = out.dumped.expect("killing a shard must dump");
    assert!(
        !out.status.alerts.is_empty(),
        "the dump must ride an SLO alert"
    );

    let text = std::fs::read_to_string(&path).expect("dump file exists");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("dump parses");
    assert!(validate_dump(&doc).is_ok());
    let serde_json::Value::Array(records) = doc.field("records").unwrap() else {
        panic!("records must be an array");
    };
    let last = records.last().expect("dump holds records");

    let snap = r.registry().snapshot();
    let gauge = |name: &str| -> f64 {
        snap.instruments
            .iter()
            .find_map(|i| match &i.value {
                pran_telemetry::metrics::InstrumentValue::Gauge(g) if i.name == name => Some(*g),
                _ => None,
            })
            .unwrap_or_else(|| panic!("gauge {name} missing"))
    };
    for (field, metric) in [
        ("epoch", "soak.epoch"),
        ("miss_ratio", "soak.miss_ratio"),
        ("utilization", "soak.utilization"),
        ("alive_servers", "soak.alive_servers"),
        ("unplaced", "soak.unplaced"),
    ] {
        assert_eq!(
            last.field(field).unwrap().as_f64().unwrap(),
            gauge(metric),
            "dump field {field} must match registry gauge {metric}"
        );
    }

    // The published /recorder document agrees with the on-disk dump's
    // records (reason differs: scrape vs slo-alert).
    let addr = r.serve("127.0.0.1:0").expect("bind");
    // Re-publish by stepping once more; recorder gained one record.
    r.run_epoch();
    let (code, body) = http_get(addr, "/recorder").expect("recorder route");
    assert_eq!(code, 200);
    let live: serde_json::Value = serde_json::from_str(&body).expect("recorder json");
    assert!(validate_dump(&live).is_ok());

    let _ = std::fs::remove_dir_all(&dir);
}
