//! Cross-crate telemetry integration: a pooled simulation traced under the
//! simulated clock must export deterministically, and the export must
//! reconstruct the per-subframe latency breakdown.

use std::sync::Mutex;
use std::time::Duration;

use pran_sched::realtime::ParallelConfig;
use pran_sim::{PoolConfig, PoolSimulator};
use pran_telemetry::{export, TelemetryConfig, TraceEvent};
use pran_traces::{generate, TraceConfig};

/// The tracer is process-global; tests that reconfigure it must not
/// interleave.
static TRACER: Mutex<()> = Mutex::new(());

/// Run a small pooled simulation with sim-clock tracing on and return the
/// captured events. `steal: false` keeps the parallel executor
/// deterministic, so same-seed runs must trace identically.
fn traced_pool_run() -> Vec<TraceEvent> {
    pran_telemetry::configure(TelemetryConfig::sim());
    let mut tcfg = TraceConfig::default_day(10, 77);
    tcfg.duration_seconds = 2.0 * 3600.0;
    tcfg.step_seconds = 600.0;
    let trace = generate(&tcfg);
    let mut cfg = PoolConfig::default_eval(6);
    cfg.epoch_steps = 4;
    cfg.parallel = Some(ParallelConfig {
        cores: 4,
        batch: 1,
        steal: false,
    });
    let mut sim = PoolSimulator::new(trace, cfg);
    let report = sim.run();
    assert!(report.metrics.tasks_total > 0, "simulation must do work");
    pran_telemetry::trace::drain()
}

#[test]
fn identical_runs_export_byte_identical_traces() {
    let _guard = TRACER.lock().unwrap();
    let a = export::to_jsonl(&traced_pool_run());
    let b = export::to_jsonl(&traced_pool_run());
    pran_telemetry::disable();
    assert!(!a.is_empty(), "trace must capture events");
    assert_eq!(a, b, "same-seed runs must trace byte-identically");
}

#[test]
fn trace_round_trips_through_jsonl_and_reconstructs_breakdown() {
    let _guard = TRACER.lock().unwrap();
    let events = traced_pool_run();
    pran_telemetry::disable();
    let jsonl = export::to_jsonl(&events);
    let lines = export::validate_jsonl(&jsonl).expect("exported trace must validate");
    assert_eq!(lines, events.len());

    // The breakdown rebuilt from the serialized form must agree with the
    // one computed from the in-memory events.
    let direct = export::subframe_breakdown(&events);
    let rebuilt = export::breakdown_from_jsonl(&jsonl).expect("breakdown from jsonl");
    assert!(direct.tasks > 0, "pool run must emit subframe events");
    assert_eq!(direct.tasks, rebuilt.tasks);
    assert_eq!(direct.misses, rebuilt.misses);
    assert_eq!(direct.queue, rebuilt.queue);
    assert_eq!(direct.service, rebuilt.service);
    assert_eq!(direct.slack, rebuilt.slack);

    // Sanity on the reconstruction itself: every on-time task has slack
    // within the 2 ms HARQ compute budget.
    assert_eq!(direct.queue.count(), direct.tasks);
    assert!(direct.slack.max() <= Duration::from_millis(2));
}

#[test]
fn disabled_telemetry_captures_nothing_from_a_pool_run() {
    let _guard = TRACER.lock().unwrap();
    pran_telemetry::configure(TelemetryConfig::disabled());
    let mut tcfg = TraceConfig::default_day(5, 7);
    tcfg.duration_seconds = 3600.0;
    tcfg.step_seconds = 600.0;
    let mut sim = PoolSimulator::new(generate(&tcfg), PoolConfig::default_eval(4));
    let _ = sim.run();
    assert!(pran_telemetry::trace::drain().is_empty());
}
