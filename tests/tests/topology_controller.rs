//! Controller + multi-site topology: fronthaul reachability drives
//! placement and failover at the control plane.

use std::time::Duration;

use pran::apps::FailoverApp;
use pran::{Controller, SystemConfig};
use pran_fronthaul::{edge_regional, FunctionalSplit};

/// Build a controller bound to a 2-edge + 6-regional topology.
fn bound_controller(split: FunctionalSplit, cells: usize) -> Controller {
    let topo = edge_regional(cells, 1000.0, 2, 6, 80.0, split);
    let mut cfg = SystemConfig::default_eval(topo.total_servers());
    cfg.headroom = 1.05;
    let mut ctl = Controller::new(cfg);
    ctl.bind_topology(&topo, Duration::from_micros(1600))
        .expect("server counts match");
    for _ in 0..cells {
        ctl.register_cell();
    }
    ctl
}

#[test]
fn latency_bound_split_stays_on_edge() {
    let mut ctl = bound_controller(FunctionalSplit::FrequencyDomain, 6);
    for c in 0..6 {
        ctl.report_load(c, 0.35).unwrap();
    }
    let report = ctl.run_epoch(Duration::from_secs(60));
    assert_eq!(report.unplaced, 0, "edge tier holds the load");
    // Servers 0..2 are edge; the regional ones are unreachable.
    for (c, a) in ctl.placement().assignment.iter().enumerate() {
        assert!(a.unwrap() < 2, "cell {c} escaped to an unreachable server");
    }
}

#[test]
fn tolerant_split_uses_the_regional_tier_under_pressure() {
    let mut ctl = bound_controller(FunctionalSplit::TransportBlocks, 10);
    for c in 0..10 {
        ctl.report_load(c, 0.8).unwrap();
    }
    let report = ctl.run_epoch(Duration::from_secs(60));
    assert_eq!(report.unplaced, 0, "regional capacity absorbs the rest");
    let on_regional = ctl
        .placement()
        .assignment
        .iter()
        .filter(|a| a.unwrap() >= 2)
        .count();
    assert!(on_regional > 0, "2 edge servers cannot hold 10 hot cells");
}

#[test]
fn edge_overload_under_tight_split_drops_cells() {
    // 10 hot cells, frequency-domain split → only the 2 edge servers are
    // usable → someone stays unplaced.
    let mut ctl = bound_controller(FunctionalSplit::FrequencyDomain, 10);
    for c in 0..10 {
        ctl.report_load(c, 0.8).unwrap();
    }
    let report = ctl.run_epoch(Duration::from_secs(60));
    assert!(report.unplaced > 0, "edge tier cannot hold 10 hot cells");
    for a in ctl.placement().assignment.iter().flatten() {
        assert!(*a < 2, "placed cells must all be on the edge");
    }
}

#[test]
fn migrate_action_respects_reachability() {
    let mut ctl = bound_controller(FunctionalSplit::FrequencyDomain, 2);
    for c in 0..2 {
        ctl.report_load(c, 0.3).unwrap();
    }
    ctl.run_epoch(Duration::from_secs(60));
    // Server 5 is regional: out of reach for this split.
    let err = ctl.apply_action(pran::Action::Migrate { cell: 0, to: 5 });
    assert!(err.is_err(), "reachability must be enforced on app actions");
}

#[test]
fn failover_app_respects_reachability() {
    let mut ctl = bound_controller(FunctionalSplit::FrequencyDomain, 3);
    ctl.install_app(Box::new(FailoverApp::new()));
    for c in 0..3 {
        ctl.report_load(c, 0.3).unwrap();
    }
    ctl.run_epoch(Duration::from_secs(60));
    // Kill edge server 0: the app may only use edge server 1 (regional is
    // out of reach), and the controller rejects anything else.
    let report = ctl.server_failed(0, Duration::from_secs(61)).unwrap();
    for &c in &report.displaced {
        // None is acceptable: edge server 1 may lack room.
        if let Some(s) = ctl.placement().assignment[c] {
            assert_eq!(s, 1, "re-placement must stay on the edge");
        }
    }
}

#[test]
fn snapshot_preserves_topology_binding() {
    let mut ctl = bound_controller(FunctionalSplit::FrequencyDomain, 4);
    for c in 0..4 {
        ctl.report_load(c, 0.4).unwrap();
    }
    ctl.run_epoch(Duration::from_secs(60));
    let mut restored = Controller::restore(ctl.snapshot());
    for c in 0..4 {
        restored.report_load(c, 0.9).unwrap();
    }
    let report = restored.run_epoch(Duration::from_secs(120));
    // The restored controller still refuses the regional tier.
    for a in restored.placement().assignment.iter().flatten() {
        assert!(*a < 2, "restored controller lost its reachability matrix");
    }
    let _ = report;
}

#[test]
fn binding_validates_server_count() {
    let topo = edge_regional(4, 1000.0, 2, 6, 80.0, FunctionalSplit::FrequencyDomain);
    let mut ctl = Controller::new(SystemConfig::default_eval(3)); // wrong count
    assert!(ctl
        .bind_topology(&topo, Duration::from_micros(1000))
        .is_err());
}
