//! Proof that the epoch hot kernel is allocation-free at steady state
//! (ISSUE 6 tentpole).
//!
//! A counting `#[global_allocator]` wraps the system allocator; after
//! one warm-up pass grows every reusable buffer to capacity, repeating
//! the per-step kernel — clear + SoA batch fill, `simulate_into`
//! scheduling, histogram recording — must perform *zero* further heap
//! allocations. The whole file is one `#[test]` because the counter is
//! process-global and sibling tests in the same binary would race it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pran_obs::FlightRecorder;
use pran_sched::realtime::{simulate_into, BatchOutcome, Policy, SimScratch, TaskBatch};
use pran_sim::EpochRecord;
use pran_telemetry::metrics::LogHistogram;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const TTI_NS: u64 = 1_000_000;
const DEADLINE_NS: u64 = 2_000_000;

/// One simulated trace step for one server: refill the batch from a
/// cheap deterministic pattern, schedule it, record the outcomes, and
/// ring the armed flight recorder (the soak service does all of this
/// every epoch — the whole loop must stay allocation-free).
fn step(
    round: u64,
    batch: &mut TaskBatch,
    scratch: &mut SimScratch,
    out: &mut BatchOutcome,
    response: &mut LogHistogram,
    slack: &mut LogHistogram,
    recorder: &mut FlightRecorder<EpochRecord>,
) {
    batch.clear();
    for cell in 0..40u32 {
        for tti in 0..4u64 {
            let release = TTI_NS * tti;
            // Vary service with the round so the heaps see fresh
            // orderings each iteration, not one memoized shape.
            let service = 150_000 + 11_337 * ((round + cell as u64 + tti) % 17);
            batch.push(cell, release, release + DEADLINE_NS, service);
        }
    }
    simulate_into(batch, 4, Policy::GlobalEdf, scratch, out);
    let mut misses = 0u64;
    for i in 0..batch.len() {
        let finish = out.finish_ns[i];
        response.record_us((finish - batch.release_ns[i]) / 1_000);
        if !out.missed[i] {
            slack.record_us((batch.deadline_ns[i] - finish) / 1_000);
        } else {
            misses += 1;
        }
    }
    let tasks = batch.len() as u64;
    recorder.push(EpochRecord {
        epoch: round,
        at_us: round * 1_000,
        tasks,
        misses,
        lost: 0,
        reports_lost: 0,
        miss_ratio: misses as f64 / tasks as f64,
        cum_miss_ratio: 0.0,
        slack_p99_us: slack.quantile(0.99).as_micros() as u64,
        peak_queue_depth: 4,
        servers_used: 1,
        alive_servers: 1,
        alive_mask: 1,
        utilization: 0.5,
        unplaced: 0,
        alert_mask: 0,
        violation: false,
    });
}

#[test]
fn hot_kernel_allocates_nothing_at_steady_state() {
    assert!(
        !pran_telemetry::enabled(),
        "telemetry must stay off: the contract covers the off-mode path"
    );
    let mut batch = TaskBatch::default();
    let mut scratch = SimScratch::default();
    let mut out = BatchOutcome::default();
    let mut response = LogHistogram::default();
    let mut slack = LogHistogram::default();
    // Armed flight recorder: the 247 steady rounds below span its fill
    // phase AND several wraparounds — both must stay allocation-free.
    let mut recorder = FlightRecorder::new(64);

    // Warm-up: grows every Vec/heap to its steady-state capacity.
    for round in 0..3 {
        step(
            round,
            &mut batch,
            &mut scratch,
            &mut out,
            &mut response,
            &mut slack,
            &mut recorder,
        );
    }
    assert!(response.count() > 0, "warm-up executed no tasks");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for round in 3..250 {
        step(
            round,
            &mut batch,
            &mut scratch,
            &mut out,
            &mut response,
            &mut slack,
            &mut recorder,
        );
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state hot kernel allocated {} times over 247 steps",
        after - before
    );
    assert_eq!(recorder.len(), 64, "the ring must have filled");
    assert_eq!(recorder.total_pushed(), 250, "every step must have rung");
}
