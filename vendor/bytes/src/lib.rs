//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer
//! (`Arc<[u8]>` plus a view window); [`BytesMut`] is a growable buffer
//! that freezes into one. The [`Buf`]/[`BufMut`] traits provide the
//! big-endian cursor reads/writes the fronthaul wire format uses.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cursor-style reads from the front of a buffer (big-endian).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes from the front and return them.
    fn take_front(&mut self, n: usize) -> &[u8];

    /// Advance the read cursor by `n` bytes.
    fn advance(&mut self, n: usize) {
        self.take_front(n);
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_front(2).try_into().expect("2 bytes"))
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_front(4).try_into().expect("4 bytes"))
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_front(8).try_into().expect("8 bytes"))
    }
}

/// Cursor-style writes to the back of a buffer (big-endian).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// View over a static slice (copied; cheapness of `'static` reuse is
    /// not load-bearing here).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
            start: 0,
            end: slice.len(),
        }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view `[at..]`, splitting zero-copy.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: {} < {n}", self.len());
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shorten to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { data: s.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u16(0xABCD);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.extend_from_slice(b"xy");
        let mut b = buf.freeze();
        assert_eq!(b.len(), 17);
        assert_eq!(b.get_u16(), 0xABCD);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn clone_is_view_stable() {
        let b = Bytes::copy_from_slice(b"hello");
        let mut c = b.clone();
        assert_eq!(c.get_u8(), b'h');
        assert_eq!(
            &b[..],
            b"hello",
            "clone consumption must not move the original"
        );
        assert_eq!(&c[..], b"ello");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(b"x");
        b.get_u16();
    }
}
