//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-harness subset this workspace's benches
//! use: groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros. Statistics are deliberately simple —
//! median and min/max over a fixed number of samples, each sample
//! auto-scaled to run long enough to be timeable — with no HTML
//! reports. When invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), every routine runs exactly once
//! so the suite stays fast and the benches stay compiled-and-checked.

use std::fmt;
use std::time::{Duration, Instant};

/// Work-per-iteration annotation; turns times into rates in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// How much setup output `iter_batched` may buffer per batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs; one setup per iteration is fine.
    SmallInput,
    /// Large inputs; also one setup per iteration here.
    LargeInput,
    /// Each iteration gets exactly one setup call.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with an explicit function name and parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered `group/…` label suffix.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing driver handed to each benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, auto-scaling iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up + calibration: find an iteration count that runs for
        // at least ~2ms so short kernels are measurable.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }

    /// Time `routine` with a fresh `setup` product per iteration,
    /// excluding setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..2 {
            black_box(routine(setup())); // warm-up
        }
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Reduce total measurement time (accepted for API parity; the
    /// sample count is what this harness actually scales).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.run(label, |b| f(b));
        self
    }

    /// Benchmark a routine over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.run(label, |b| f(b, input));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, label: String, f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("test {label} ... ok");
            return;
        }
        report(&label, &bencher.samples, self.throughput);
    }

    /// End the group. (Reports are emitted per-benchmark.)
    pub fn finish(self) {}
}

/// Entry point: hands out benchmark groups.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench targets with `--test`;
        // `cargo bench` passes `--bench`. Unknown flags (filters) are
        // tolerated.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Configure the default sample count (accepted for API parity).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 20,
            criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: 20,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            report(name, &bencher.samples, None);
        }
        self
    }

    /// Final hook for API parity; reports are already printed.
    pub fn final_summary(&mut self) {}
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  thrpt: {}/s", si(per_sec(n))),
            Throughput::Bytes(n) => format!("  thrpt: {}B/s", si(per_sec(n))),
        }
    });
    println!(
        "{label:<44} time: [{} {} {}]{}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        rate.unwrap_or_default()
    );
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Define a benchmark group function from a list of `fn(&mut
/// Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn harness_runs_end_to_end() {
        // Can't rely on process args here; exercise both modes directly.
        let mut timed = Criterion { test_mode: false };
        run_group(&mut timed);
        let mut tested = Criterion { test_mode: true };
        run_group(&mut tested);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 32).into_label(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("qpsk").into_label(), "qpsk");
    }
}
