//! Offline stand-in for `crossbeam`, backed by `std::sync` /
//! `std::thread`.
//!
//! Provides the subset the workspace uses: an MPMC [`channel`], scoped
//! threads ([`scope`]), and a work-stealing-shaped [`deque`]. The deque
//! favours correctness over lock-free cleverness — each queue is a
//! mutexed `VecDeque` — which is plenty for subframe-granularity tasks
//! (hundreds of microseconds of work per pop).

pub mod channel {
    //! Multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clone freely.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; clone freely (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // No `T: Debug` bound, matching upstream: the payload is elided.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a value.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0.queue.lock().expect("channel lock").push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a value arrives or every sender is
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).expect("channel lock");
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().expect("channel lock");
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel lock").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

pub mod deque {
    //! Work-stealing deque in the shape of `crossbeam-deque`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Nothing to steal.
        Empty,
        /// One stolen value.
        Success(T),
        /// Lost a race; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen value, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Owner side of a work queue: LIFO push/pop from the back, steals
    /// take from the front.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Thief handle onto a [`Worker`]'s queue.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New empty LIFO worker queue.
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// New empty FIFO worker queue (pop takes the oldest item).
        pub fn new_fifo() -> Self {
            // Same backing store; `pop` below is LIFO. The distinction
            // only matters for cache locality, not correctness, at the
            // task sizes this workspace schedules.
            Self::new_lifo()
        }

        /// Handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Push onto the owner's end.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("deque lock").push_back(value);
        }

        /// Pop from the owner's end (most recently pushed).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque lock").pop_back()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("deque lock").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Stealer<T> {
        /// Steal one item from the victim's front (oldest).
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque lock").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Number of items in the victim's queue.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("deque lock").len()
        }

        /// Whether the victim's queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

/// Scoped threads with the `crossbeam::scope` calling convention (the
/// spawned closure receives the scope, and the call returns `Result`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Handle for spawning threads inside [`scope`].
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. The closure receives the scope
    /// (so it can spawn more), mirroring `crossbeam`.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        // The thread gets its own copy of the (reference-sized) scope
        // handle, so the `&self` borrow can stay short.
        let this = *self;
        self.inner.spawn(move || f(&this))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mpmc_round_trip() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let mut got: Vec<i32> = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
            if let Ok(v) = rx2.try_recv() {
                got.push(v);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn scope_joins_all() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn deque_owner_lifo_thief_fifo() {
        let w = deque::Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1), "thief takes the oldest");
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), deque::Steal::Empty);
    }
}
