//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the ergonomic difference that matters at call sites: `lock()`
//! returns the guard directly (no poison `Result`). A poisoned std mutex
//! means a holder panicked; like `parking_lot`, we simply continue with
//! the data (`into_inner` on the poison error).

use std::sync;

/// Mutual exclusion, `parking_lot`-style (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock, `parking_lot`-style (non-poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
