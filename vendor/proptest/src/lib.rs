//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/runner subset this workspace's property
//! tests use: range and `any::<T>()` strategies, tuple strategies,
//! `Just`, `prop_map`/`prop_flat_map`, `collection::vec`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` / `prop_assume!` macros. Differences from upstream:
//!
//! * **No shrinking.** A failing case reports the seed it was
//!   generated from (cases are seeded deterministically per test name
//!   and case index, so failures reproduce on re-run).
//! * **Regression files** (`*.proptest-regressions`) are honoured by
//!   replaying each recorded `cc` seed hash as an extra deterministic
//!   case ahead of the generated ones. The hash seeds this runner's own
//!   RNG — upstream's exact byte stream is not reconstructible — so
//!   pinned inputs recorded in comments should additionally be asserted
//!   by an explicit unit test where they matter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Everything the `proptest!` DSL needs in scope.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!` failed) draws before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw new ones.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A source of random values for strategies.
pub struct TestRng(pub SmallRng);

/// Something that can generate values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        MapStrategy { inner: self, f }
    }

    /// Generate a value, then a second one from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `any::<T>()` marker strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform values over a type's whole domain.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types supported by [`any`].
pub trait ArbitraryValue: Sized {
    /// Draw one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<bool>()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.0.gen::<f64>() * 1e9;
        if rng.0.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Acceptable size arguments for [`vec()`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The per-test runner invoked by the generated test functions.
pub struct TestRunner;

impl TestRunner {
    /// Run `case` under `config`, deterministically seeded from
    /// `test_path`. `source_file` locates a sibling
    /// `*.proptest-regressions` file whose `cc` seeds replay first.
    pub fn run<F>(config: &ProptestConfig, test_path: &str, source_file: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;

        // Replay regression seeds first.
        for (line, seed) in regression_seeds(source_file) {
            let mut rng = TestRng(SmallRng::seed_from_u64(seed ^ fnv1a(test_path)));
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest: regression case from {source_file}:{line} failed in {test_path}: {msg}"
                ),
            }
        }

        let mut completed = 0u32;
        let mut index = 0u64;
        while completed < config.cases {
            let seed = fnv1a(test_path) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            index += 1;
            let mut rng = TestRng(SmallRng::seed_from_u64(seed));
            match case(&mut rng) {
                Ok(()) => completed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest: {test_path}: too many prop_assume! rejections \
                             ({rejects}); strategy too narrow"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: {test_path} failed at case #{completed} (seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

/// FNV-1a over the test path: a stable, dependency-free name hash.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Parse `cc <hex>` lines from the sibling regression file, if any.
fn regression_seeds(source_file: &str) -> Vec<(usize, u64)> {
    let path = std::path::Path::new(source_file).with_extension("proptest-regressions");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .enumerate()
        .filter_map(|(i, line)| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex = rest.split_whitespace().next()?;
            let head = hex.get(0..16)?;
            u64::from_str_radix(head, 16).ok().map(|seed| (i + 1, seed))
        })
        .collect()
}

/// Assert inside a proptest case; failure reports instead of panicking
/// mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Reject the current inputs and draw fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-suite macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            $crate::TestRunner::run(&config, test_path, file!(), |__rng| {
                $(let $arg = $crate::Strategy::new_value(&$strategy, __rng);)+
                // Bind a closure so `?`/`return` inside the body only
                // exits the case.
                let __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in 0.0f64..1.0, z in 3usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(z, 3);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..255, 2..6), w in crate::collection::vec(0u8..10, 4)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_rejects(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }

        #[test]
        fn tuple_and_pattern_args((a, b) in (1u32..5, 10u32..20)) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn combinators_compose(
            pair in (1usize..4).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0.0f64..1.0, n..n + 1))
            }).prop_map(|(n, v)| (n, v.len())),
        ) {
            prop_assert_eq!(pair.0, pair.1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let cfg = ProptestConfig::with_cases(3);
        let mut first: Vec<u64> = Vec::new();
        TestRunner::run(&cfg, "det_test", file!(), |rng| {
            first.push(Strategy::new_value(&(0u64..1_000_000), rng));
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        TestRunner::run(&cfg, "det_test", file!(), |rng| {
            second.push(Strategy::new_value(&(0u64..1_000_000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        TestRunner::run(&ProptestConfig::with_cases(1), "fail_test", file!(), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
