//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates registry, so the
//! workspace vendors the small API subset it actually uses: `SmallRng`
//! seeded deterministically, `Rng::{gen, gen_range, gen_bool}` and
//! `SeedableRng::{from_seed, seed_from_u64}`.
//!
//! The value streams are **bit-exact** with `rand 0.8.5` on 64-bit
//! targets: xoshiro256++ seeded through SplitMix64, `next_u32` taking
//! the upper half of `next_u64`, Lemire widening-multiply rejection for
//! integer ranges, the 52-bit `[1, 2)` mantissa method for float
//! ranges, and fixed-point comparison for `gen_bool`. Exactness matters
//! because the workspace's statistical tests (blocking probabilities,
//! multiplexing gains, BLER thresholds) were calibrated against the
//! upstream streams; a distributionally-equal-but-different generator
//! shifts every sampled statistic and turns tight assertions into coin
//! flips.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits (upper half of `next_u64`, as upstream's
    /// xoshiro256++ wrapper does — the low bits are the weaker ones).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes (rand_core `fill_bytes_via_next`:
    /// whole and 5..=7-byte tails from `next_u64`, short tails from
    /// `next_u32`).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut left = dest;
        while left.len() >= 8 {
            let (l, r) = left.split_at_mut(8);
            left = r;
            l.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let n = left.len();
        if n > 4 {
            left.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        } else if n > 0 {
            left.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion (bit-identical
    /// to upstream `rand`'s seeding of xoshiro256++).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value uniformly over the type's natural domain.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

// Upstream draws types that fit in 32 bits from `next_u32` and the rest
// from `next_u64`; signed types cast from their unsigned twin.
macro_rules! impl_standard_int32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_standard_int32!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_int64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int64!(u64, usize, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream order: low word first.
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream samples the most significant bit via a sign test.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Widening multiply: `(high word, low word)` of `a × b`.
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = u64::from(a) * u64::from(b);
    ((t >> 32) as u32, t as u32)
}

fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = u128::from(a) * u128::from(b);
    ((t >> 64) as u64, t as u64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw uniformly from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Integer uniform sampling, bit-exact with upstream `UniformInt`
// `sample_single_inclusive`: Lemire's widening-multiply rejection.
// Types ≤ 16 bits compute the exact rejection zone; wider types use the
// cheap `range << leading_zeros` approximation, exactly as upstream.
macro_rules! impl_range_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wmul:ident, $gen_large:ident, $exact_zone:expr) => {
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                if range == 0 {
                    // The whole type's domain: any value is uniform.
                    return rng.$gen_large() as $ty;
                }
                let zone = if $exact_zone {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$gen_large() as $u_large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample(rng)
            }
        }
    };
}

impl_range_int!(u8, u8, u32, wmul32, next_u32, true);
impl_range_int!(u16, u16, u32, wmul32, next_u32, true);
impl_range_int!(u32, u32, u32, wmul32, next_u32, false);
impl_range_int!(u64, u64, u64, wmul64, next_u64, false);
impl_range_int!(usize, usize, u64, wmul64, next_u64, false);
impl_range_int!(i8, u8, u32, wmul32, next_u32, true);
impl_range_int!(i16, u16, u32, wmul32, next_u32, true);
impl_range_int!(i32, u32, u32, wmul32, next_u32, false);
impl_range_int!(i64, u64, u64, wmul64, next_u64, false);
impl_range_int!(isize, usize, u64, wmul64, next_u64, false);

// Float uniform sampling, bit-exact with upstream `UniformFloat`: draw
// a value in [1, 2) from the top mantissa-width bits, then scale. The
// half-open range rejects the (rounding-induced) upper endpoint and
// redraws; the inclusive range divides the scale by the largest
// drawable value0_1 so the endpoint is reachable.
macro_rules! impl_range_float {
    ($ty:ty, $uty:ty, $next:ident, $bits_to_discard:expr, $exponent_bits:expr) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let scale = self.end - self.start;
                loop {
                    let value1_2 =
                        <$ty>::from_bits($exponent_bits | (rng.$next() >> $bits_to_discard));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let max_rand =
                    <$ty>::from_bits($exponent_bits | (<$uty>::MAX >> $bits_to_discard)) - 1.0;
                let scale = (high - low) / max_rand;
                loop {
                    let value1_2 =
                        <$ty>::from_bits($exponent_bits | (rng.$next() >> $bits_to_discard));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res <= high {
                        return res;
                    }
                }
            }
        }
    };
}

impl_range_float!(f64, u64, next_u64, 12, 1023u64 << 52);
impl_range_float!(f32, u32, next_u32, 9, 127u32 << 23);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true` (upstream
    /// fixed-point comparison: `next_u64 < p × 2⁶⁴`).
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++), stream-
    /// compatible with `rand 0.8`'s `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // An all-zero state is a fixed point of xoshiro; upstream
            // reseeds through SplitMix64(0) in that case.
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_reference_xoshiro_vectors() {
        // Reference outputs from xoshiro256plusplus.c with state
        // {1, 2, 3, 4} — the known-answer test upstream `rand` ships.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        for expected in [
            41943041u64,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ] {
            assert_eq!(rng.next_u64(), expected);
        }
    }

    #[test]
    fn next_u32_takes_upper_half() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(0u64..=5);
            assert!(z <= 5);
            let w: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let v: u8 = rng.gen_range(0..2u8);
            assert!(v < 2);
            let m: u8 = rng.gen_range(4..=28);
            assert!((4..=28).contains(&m));
        }
    }

    #[test]
    fn inclusive_float_range_reaches_interior() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&v));
            lo_seen |= v < 0.30;
            hi_seen |= v > 0.70;
        }
        assert!(lo_seen && hi_seen, "inclusive range not covering interior");
    }

    #[test]
    fn f64_unit_interval_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn small_int_ranges_are_uniform() {
        // Lemire rejection on u8 with exact zone: verify near-uniform
        // counts over a range that does not divide 2^32.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3u8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_tail_sizes() {
        for len in 0..20usize {
            let mut rng = SmallRng::seed_from_u64(5);
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                let mut expect = SmallRng::seed_from_u64(5);
                assert_eq!(&buf[..8], &expect.next_u64().to_le_bytes());
            }
        }
    }
}
