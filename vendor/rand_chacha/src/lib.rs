//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] and [`ChaCha20Rng`]: seedable, portable RNGs
//! built on the ChaCha stream cipher (RFC 8439 block function, 32-bit
//! block counter, all-zero nonce, counter starting at 0). The keystream
//! is **bit-exact with the RFC 8439 ChaCha20 cipher** for the same key —
//! the known-answer test below pins the first block against an
//! independent implementation — so value streams are stable across
//! platforms, compiler versions and releases of this workspace. That
//! stability is the reason the chaos explorer uses ChaCha rather than
//! `SmallRng`: a shrunk failing schedule cited in a bug report must
//! regenerate from its seed forever.
//!
//! Word order follows upstream `rand_chacha`: the 16 output words of a
//! block are consumed in order; `next_u64` glues two consecutive words
//! little-endian (low word first). Seeding via `seed_from_u64` goes
//! through the vendored `rand`'s SplitMix64 expansion.

use rand::{RngCore, SeedableRng};

/// ChaCha constants: `"expand 32-byte k"` as four little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8, 12 or 20).
fn block(key: &[u32; 8], counter: u32, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter;
    // state[13..16]: all-zero 96-bit nonce.
    let mut working = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (w, s) in working.iter_mut().zip(&state) {
        *w = w.wrapping_add(*s);
    }
    working
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            key: [u32; 8],
            counter: u32,
            buffer: [u32; 16],
            /// Next unconsumed word in `buffer`; 16 means "refill".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            #[inline]
            fn next_word(&mut self) -> u32 {
                if self.index == 16 {
                    self.refill();
                }
                let w = self.buffer[self.index];
                self.index += 1;
                w
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_word() as u64;
                let hi = self.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, word) in key.iter_mut().enumerate() {
                    let mut bytes = [0u8; 4];
                    bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
                    *word = u32::from_le_bytes(bytes);
                }
                $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the fast profile for bulk schedule sampling."
);
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with the full 20 rounds (RFC 8439 keystream for the same key)."
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 8439 ChaCha20 keystream with key 00..1f, zero nonce, counter 0,
    /// cross-checked against pyca/cryptography's ChaCha20.
    #[test]
    fn chacha20_known_answer() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        assert_eq!(rng.next_u32(), 0x7d2b_fd39);
        assert_eq!(rng.next_u32(), 0x6a19_c5d9);
        assert_eq!(rng.next_u32(), 0x7703_bd8d);
        assert_eq!(rng.next_u32(), 0x494a_dcb8);
        assert_eq!(rng.next_u32(), 0x6fd8_358a);
        assert_eq!(rng.next_u32(), 0xcc6a_debc);
        assert_eq!(rng.next_u32(), 0x4c7d_ccb2);
        assert_eq!(rng.next_u32(), 0x9224_ead8);
    }

    /// Same key through `next_u64`: two consecutive words, low word first.
    #[test]
    fn next_u64_is_two_words_low_first() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        assert_eq!(rng.next_u64(), 0x6a19_c5d9_7d2b_fd39);
        assert_eq!(rng.next_u64(), 0x494a_dcb8_7703_bd8d);
    }

    /// `seed_from_u64` goes through the vendored SplitMix64 expansion;
    /// the resulting stream is pinned (cross-checked with pyca).
    #[test]
    fn seed_from_u64_stream_pinned() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        assert_eq!(rng.next_u64(), 0x1843_cd2c_5d94_2b5b);
        assert_eq!(rng.next_u64(), 0x71a3_5992_ccf5_be10);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let draw = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn crosses_block_boundaries_cleanly() {
        // 16 words per block: draw 40 words via mixed u32/u64 calls and
        // compare against a pure-u32 reference stream.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut ref_words = Vec::new();
        for _ in 0..40 {
            ref_words.push(a.next_u32());
        }
        let mut got = Vec::new();
        while got.len() + 2 <= 40 {
            let v = b.next_u64();
            got.push(v as u32);
            got.push((v >> 32) as u32);
        }
        assert_eq!(&got[..], &ref_words[..40 / 2 * 2]);
    }

    #[test]
    fn works_with_rand_facade() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
            let p = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&p));
            rng.gen_bool(0.25);
        }
    }
}
