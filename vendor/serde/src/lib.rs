//! Offline stand-in for `serde`.
//!
//! The real serde abstracts over data formats with a visitor
//! architecture; this workspace only ever serializes to and from JSON,
//! so the vendored version collapses the data model to a single
//! JSON-shaped [`value::Value`] tree. `Serialize` renders into it,
//! `Deserialize` reads back out of it, and the derive macro (in
//! `serde_derive`) generates field-by-field impls matching serde_json's
//! externally-tagged enum representation.

pub mod value;

pub use value::{Error, Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Render `self` into the JSON-shaped data model.
pub trait Serialize {
    /// Build the value tree.
    fn to_json_value(&self) -> Value;
}

/// Reconstruct `Self` from the JSON-shaped data model.
pub trait Deserialize: Sized {
    /// Read the value tree; `Err` carries a path-annotated message.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::new(format!(
                    "expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::new(format!(
                    "expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        f64::from_json_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_json_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_json_value(v).map(Into::into)
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_json_value(item).map_err(|e| e.at(&format!("[{i}]"))))
                .collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self[..].to_json_value()
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(Error::new(format!(
                                "expected {expect}-tuple, got {} items", items.len())));
                        }
                        Ok(($($name::from_json_value(&items[$idx])
                            .map_err(|e| e.at(&format!("[{}]", $idx)))?,)+))
                    }
                    other => Err(Error::new(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Map keys usable with JSON objects (rendered as strings, the way
/// serde_json serializes integer-keyed maps).
pub trait JsonKey: Sized + Ord {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::new(format!(
                    "bad {} map key {s:?}", stringify!($t))))
            }
        }
    )*};
}
impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.to_key(), v.to_json_value());
        }
        Value::Object(m)
    }
}
impl<K: JsonKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for std::collections::HashMap<K, V, S>
{
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v).map_err(|e| e.at(k))?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: JsonKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_key(), v.to_json_value());
        }
        Value::Object(m)
    }
}
impl<K: JsonKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v).map_err(|e| e.at(k))?)))
                .collect(),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_json_value(&self) -> Value {
        // Match serde's upstream representation: {"secs": .., "nanos": ..}.
        let mut m = Map::new();
        m.insert("secs".to_string(), self.as_secs().to_json_value());
        m.insert("nanos".to_string(), self.subsec_nanos().to_json_value());
        Value::Object(m)
    }
}
impl Deserialize for std::time::Duration {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                let secs = u64::from_json_value(
                    m.get("secs")
                        .ok_or_else(|| Error::new("Duration missing `secs`"))?,
                )?;
                let nanos = u32::from_json_value(
                    m.get("nanos")
                        .ok_or_else(|| Error::new("Duration missing `nanos`"))?,
                )?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            other => Err(Error::new(format!(
                "expected Duration object, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}
impl Deserialize for Map {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => Ok(m.clone()),
            other => Err(Error::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::time::Duration;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_json_value(&7u32.to_json_value()).unwrap(), 7);
        assert_eq!(i64::from_json_value(&(-3i64).to_json_value()).unwrap(), -3);
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()).unwrap(), 1.5);
        assert!(bool::from_json_value(&true.to_json_value()).unwrap());
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back = Vec::<(u32, f64)>::from_json_value(&v.to_json_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert(5usize, "five".to_string());
        let back = HashMap::<usize, String>::from_json_value(&m.to_json_value()).unwrap();
        assert_eq!(back, m);

        let d = Duration::new(3, 500);
        assert_eq!(Duration::from_json_value(&d.to_json_value()).unwrap(), d);

        let o: Option<u8> = None;
        assert_eq!(
            Option::<u8>::from_json_value(&o.to_json_value()).unwrap(),
            None
        );
    }

    #[test]
    fn type_errors_name_the_problem() {
        let err = u32::from_json_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected unsigned integer"));
    }
}
