//! The JSON-shaped data model shared by the vendored `serde` and
//! `serde_json`: a value tree, an insertion-ordered object map, and the
//! text serializer/parser.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// A JSON number, preserving the source integer/float distinction.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

// Numeric equality across variants: `1` round-trips through text as
// `U64(1)` even if it was serialized from an `i64`.
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (U64(a), I64(b)) | (I64(b), U64(a)) => i64::try_from(a) == Ok(b),
            (U64(a), F64(b)) | (F64(b), U64(a)) => a as f64 == b && b.fract() == 0.0,
            (I64(a), F64(b)) | (F64(b), I64(a)) => a as f64 == b && b.fract() == 0.0,
        }
    }
}

/// Insertion-ordered string-keyed map (the `serde_json::Map` shape).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

/// Serialization/deserialization error with a breadcrumb path.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    path: Vec<String>,
}

impl Error {
    /// New error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            path: Vec::new(),
        }
    }

    /// Prefix a path segment (called as errors bubble out).
    pub fn at(mut self, segment: &str) -> Self {
        self.path.push(segment.to_string());
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            let path: Vec<&str> = self.path.iter().rev().map(String::as_str).collect();
            write!(f, "at {}: {}", path.join("."), self.message)
        }
    }
}

impl std::error::Error for Error {}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key. Returns
    /// the previous value, if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove by key.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric view as `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            Value::Number(Number::F64(n)) => Some(*n),
            _ => None,
        }
    }

    /// Numeric view as `u64` (only non-negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::I64(n)) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Non-panicking lookup: object key or array index.
    pub fn get(&self, index: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(index),
            _ => None,
        }
    }

    /// Object field access for `deserialize` impls: missing fields read
    /// as `null` so `Option` fields work.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(m) => Ok(m.get(name).unwrap_or(&NULL)),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Render compactly.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => n.write(out),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl Number {
    fn write(&self, out: &mut String) {
        match self {
            Number::U64(n) => out.push_str(&n.to_string()),
            Number::I64(n) => out.push_str(&n.to_string()),
            Number::F64(n) => {
                if n.is_finite() {
                    // Like serde_json: shortest representation that
                    // round-trips, with a trailing `.0` for integral
                    // floats so the float-ness survives.
                    let s = format!("{n}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

// Index sugar: `v["key"]`, `v[0]`; missing entries read as null
// (matching serde_json).
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a":[1,-2,3.5,null,true],"b":{"c":"x\ny"},"d":1e3}"#;
        let v = parse(text).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert!(v["a"][3].is_null());
        assert_eq!(v["a"][4].as_bool(), Some(true));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert_eq!(v["d"].as_f64(), Some(1000.0));
        let back = parse(&v.to_json_string()).unwrap();
        assert_eq!(back, v);
        let pretty = parse(&v.to_json_string_pretty()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn float_formatting_keeps_floatness() {
        let v = Value::Number(Number::F64(2.0));
        assert_eq!(v.to_json_string(), "2.0");
        let back = parse("2.0").unwrap();
        assert_eq!(back.as_f64(), Some(2.0));
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), Value::Bool(true)).is_none());
        assert_eq!(m.insert("k".into(), Value::Null), Some(Value::Bool(true)));
        assert_eq!(m.len(), 1);
    }
}
