//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits (which render to / read from a JSON
//! value tree) for plain structs and enums. No `syn`/`quote` — the
//! registry is unreachable in this build environment — so the input is
//! walked directly as a `TokenStream`. Supported shapes, which cover
//! every derive in this workspace:
//!
//! * structs with named fields (including empty)
//! * unit structs and tuple structs
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching serde_json's default representation)
//! * no generics, no `#[serde(...)]` attributes

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field names of a braced body, or arity of a parenthesized one.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive the vendored `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { fields, .. } => serialize_fields_expr(fields, "self.", None),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{v}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__m)\n\
                             }},\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let inner = serialize_fields_expr(&v.fields, "", None);
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let __inner = {inner};\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{v}\".to_string(), __inner);\n\
                             ::serde::Value::Object(__m)\n\
                             }},\n",
                            v = v.name,
                            binds = names.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive the vendored `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item_name(&item);
    let body = match &item {
        Item::Struct { fields, .. } => deserialize_fields_expr(name, name, fields, "__v"),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                match &v.fields {
                    Fields::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name)),
                    Fields::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!(
                                "{name}::{v}(::serde::Deserialize::from_json_value(__inner)\
                                 .map_err(|e| e.at(\"{v}\"))?)",
                                v = v.name
                            )
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_json_value(\
                                         __items.get({i}).unwrap_or(&::serde::Value::Null))\
                                         .map_err(|e| e.at(\"{v}[{i}]\"))?",
                                        v = v.name
                                    )
                                })
                                .collect();
                            format!(
                                "{{\n\
                                 let __items = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::new(\"variant {v} expects an array\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                 return Err(::serde::Error::new(format!(\
                                 \"variant {v} expects {n} values, got {{}}\", __items.len())));\n\
                                 }}\n\
                                 {name}::{v}({elems})\n\
                                 }}",
                                v = v.name,
                                elems = elems.join(", ")
                            )
                        };
                        keyed_arms
                            .push_str(&format!("\"{v}\" => return Ok({expr}),\n", v = v.name));
                    }
                    Fields::Named(_) => {
                        let expr = deserialize_fields_expr(
                            name,
                            &format!("{name}::{v}", v = v.name),
                            &v.fields,
                            "__inner",
                        );
                        keyed_arms
                            .push_str(&format!("\"{v}\" => return Ok({expr}?),\n", v = v.name));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::new(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.iter().next().expect(\"len 1\");\n\
                 match __tag.as_str() {{\n\
                 {keyed_arms}\
                 __other => Err(::serde::Error::new(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error::new(format!(\
                 \"expected {name} variant, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(clippy::needless_question_mark)] // generated code favors one uniform Ok(..?) shape\n\
         fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } => name,
        Item::Enum { name, .. } => name,
    }
}

/// Expression producing a `Value` from fields reachable as
/// `{prefix}{field}` (named) or `{prefix}{index}` (tuple).
fn serialize_fields_expr(fields: &Fields, prefix: &str, _unused: Option<()>) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let mut out = String::from("{\nlet mut __m = ::serde::Map::new();\n");
            for f in names {
                out.push_str(&format!(
                    "__m.insert(\"{f}\".to_string(), \
                     ::serde::Serialize::to_json_value(&{prefix}{f}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(__m)\n}");
            out
        }
        Fields::Tuple(n) => {
            if *n == 1 {
                format!("::serde::Serialize::to_json_value(&{prefix}0)")
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_json_value(&{prefix}{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
    }
}

/// Expression of type `Result<TypePath, Error>` building `ctor` from the
/// value expression `src`.
fn deserialize_fields_expr(type_name: &str, ctor: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => format!("{{\nlet _ = {src};\n::std::result::Result::Ok({ctor})\n}}"),
        Fields::Named(names) => {
            let mut out = format!(
                "(|| -> ::std::result::Result<{type_name}, ::serde::Error> {{\nOk({ctor} {{\n"
            );
            for f in names {
                out.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json_value({src}.field(\"{f}\")?)\
                     .map_err(|e| e.at(\"{f}\"))?,\n"
                ));
            }
            out.push_str("})\n})()");
            out
        }
        Fields::Tuple(1) => {
            // Newtype structs serialize transparently (like serde).
            format!(
                "(|| -> ::std::result::Result<{type_name}, ::serde::Error> {{\n\
                 Ok({ctor}(::serde::Deserialize::from_json_value({src})?))\n\
                 }})()"
            )
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_json_value(\
                         __items.get({i}).unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.at(\"[{i}]\"))?"
                    )
                })
                .collect();
            format!(
                "(|| -> ::std::result::Result<{type_name}, ::serde::Error> {{\n\
                 let __items = {src}.as_array().ok_or_else(|| \
                 ::serde::Error::new(\"expected array for tuple struct\"))?;\n\
                 Ok({ctor}({elems}))\n\
                 }})()",
                elems = elems.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------
// Token-walk parser
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported ({name})");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                // Unit struct: `struct Foo;`
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde_derive: enum {name} has no body");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Parse `a: T, pub b: U, ...` → field names. Commas inside any
/// bracketed group are invisible at this token-tree level, but commas
/// inside generic angle brackets are not — track `<`/`>` depth.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_field_start = true;
    let mut tokens = stream.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        match &tok {
            TokenTree::Punct(p) => match p.as_char() {
                '#' => {
                    // Attribute on a field; skip the bracket group.
                    tokens.next();
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                '-' => {
                    // `->` in an fn-pointer type: swallow the `>` so the
                    // depth stays balanced.
                    if matches!(tokens.peek(), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                        tokens.next();
                    }
                }
                ',' if angle_depth == 0 => at_field_start = true,
                _ => {}
            },
            TokenTree::Ident(id) if at_field_start && angle_depth == 0 => {
                let s = id.to_string();
                if s == "pub" {
                    // Visibility; the name follows (possibly after a
                    // `pub(...)` group, handled by the Group arm).
                    continue;
                }
                // The name is the ident immediately before `:`.
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    names.push(s);
                    at_field_start = false;
                }
            }
            _ => {}
        }
    }
    names
}

/// Count tuple-struct / tuple-variant fields: top-level commas + 1,
/// ignoring a trailing comma, tracking angle-bracket depth.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    if tokens.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut last_was_comma = false;
    while let Some(tok) = tokens.next() {
        last_was_comma = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                '-' => {
                    if matches!(tokens.peek(), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                        tokens.next();
                    }
                }
                ',' if angle_depth == 0 => {
                    count += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if last_was_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes / doc comments.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("serde_derive: expected variant name, got {tok:?}");
        };
        let name = id.to_string();
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                tokens.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                tokens.next();
                f
            }
            _ => Fields::Unit,
        };
        // Discriminant (`= expr`) then comma, or just comma / end.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                _ => {
                    tokens.next();
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}
