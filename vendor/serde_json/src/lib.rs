//! Offline stand-in for `serde_json`, backed by the value model in the
//! vendored `serde` crate.

pub use serde::value::{Error, Map, Number, Value};

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string())
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string_pretty())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = serde::value::parse(s)?;
    T::from_json_value(&value)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Convert a [`Value`] tree into any deserializable type.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value)
}

/// Build a [`Value`] from JSON-looking syntax with interpolated
/// expressions, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array_internal!([] $($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object_internal!(map () $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

/// Internal: accumulate array elements. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // Done.
    ([ $($elems:expr),* ]) => { vec![ $($elems),* ] };
    ([ $($elems:expr),* ] ,) => { vec![ $($elems),* ] };
    // Next element is a nested structure or literal; munch up to the
    // next top-level comma.
    ([ $($elems:expr),* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elems,)* $crate::Value::Null ] $($($rest)*)?)
    };
    ([ $($elems:expr),* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elems,)* $crate::json!([ $($inner)* ]) ] $($($rest)*)?)
    };
    ([ $($elems:expr),* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elems,)* $crate::json!({ $($inner)* }) ] $($($rest)*)?)
    };
    ([ $($elems:expr),* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elems,)* $crate::json!($next) ] $($($rest)*)?)
    };
}

/// Internal: accumulate object entries. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // Done.
    ($map:ident ()) => {};
    ($map:ident () ,) => {};
    // key : nested / literal value, then maybe more.
    ($map:ident () $key:tt : null $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), $crate::Value::Null);
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
    ($map:ident () $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
    ($map:ident () $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
    ($map:ident () $key:tt : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($crate::json_key!($key), $crate::json!($value));
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
}

/// Internal: object keys may be string literals or parenthesized
/// expressions. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    (($e:expr)) => {
        ::std::string::ToString::to_string(&$e)
    };
    ($l:literal) => {
        ::std::string::ToString::to_string(&$l)
    };
    ($i:ident) => {
        ::std::string::ToString::to_string(stringify!($i))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "cell";
        let v = json!({
            "id": 3,
            "name": name,
            "ratio": 0.5,
            "nested": { "flag": true, "list": [1, 2.5, "x", null] },
            "empty_obj": {},
            "empty_arr": [],
        });
        assert_eq!(v["id"].as_u64(), Some(3));
        assert_eq!(v["name"].as_str(), Some("cell"));
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
        assert_eq!(v["nested"]["flag"].as_bool(), Some(true));
        assert_eq!(v["nested"]["list"][1].as_f64(), Some(2.5));
        assert!(v["nested"]["list"][3].is_null());
        assert_eq!(v["empty_obj"], json!({}));
        assert_eq!(v["empty_arr"], json!([]));
    }

    #[test]
    fn json_macro_interpolation() {
        let xs = vec![1u32, 2, 3];
        let v = json!({ "xs": xs, "opt": Option::<u32>::None });
        assert_eq!(v["xs"][2].as_u64(), Some(3));
        assert!(v["opt"].is_null());
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({ "a": [1, 2], "b": { "c": -4, "d": 1.25 } });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parenthesized_expression_keys() {
        let label = "edf";
        let mut m = Map::new();
        m.insert(label.to_string(), json!(1));
        let v = json!({ (label): 1 });
        assert_eq!(v, Value::Object(m));
    }
}
